"""Statement-level control-flow graphs for the dataflow analyses.

:func:`build_cfg` turns one ``ast.FunctionDef`` into a :class:`Cfg` whose
nodes are individual statements (plus synthetic entry / exit / raise-exit
nodes) and whose edges carry the branch condition they are guarded by, so
analyses can refine facts along ``True``/``False`` outcomes
(:meth:`repro.check.dataflow.ForwardAnalysis.refine`).

Shape of the graph, and the deliberate approximations:

* ``if``/``while`` produce a *test* node with condition-labelled out-edges;
  a ``while`` with a truthy constant test (``while True:``) gets no false
  edge — the loop provably never exits normally, and a phantom exit edge
  would turn every ``while True: ... return`` into a spurious leak path.
* ``for`` produces a test node with unlabelled body/exhausted edges (the
  implicit "more items" condition is not a refinable expression).
* ``try``: every statement lexically inside a ``try`` that has ``except``
  handlers gets an *exception* edge to each handler.  Exception edges
  propagate the statement's **pre**-state (the exception may fire before
  the statement's effect lands).  Statements outside any handler-bearing
  ``try`` get no exception edges: modelling "any call may raise" globally
  would route every acquisition straight to the raise-exit and drown the
  conservation analysis in false leaks.  Explicit ``raise`` statements
  *always* create exceptional flow — to the innermost enclosing handlers
  if any, else through the enclosing ``finally`` blocks to the raise-exit.
* ``finally`` bodies are duplicated per route (normal completion vs.
  ``return``/``break``/``continue``/``raise`` unwinding), so facts from an
  exceptional route never bleed into the normal-exit state.  A statement
  may therefore appear in more than one node; coverage means "at least
  one node", not "exactly one".
* Nested ``def``/``class``/``lambda`` bodies are opaque single statements;
  callers analyse them separately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Edge:
    """One control-flow edge, optionally guarded by a branch condition."""

    src: int
    dst: int
    #: The branch test this edge is guarded by (``if``/``while`` only).
    cond: Optional[ast.expr] = None
    #: Outcome of :attr:`cond` along this edge.
    polarity: Optional[bool] = None
    #: ``"flow"`` | ``"back"`` (loop back-edge) | ``"exception"``.
    kind: str = "flow"


class Node:
    """One CFG node: a statement plus its structural role."""

    __slots__ = ("index", "stmt", "kind")

    def __init__(self, index: int, stmt: Optional[ast.AST], kind: str) -> None:
        self.index = index
        self.stmt = stmt
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = type(self.stmt).__name__ if self.stmt is not None else "-"
        return f"Node({self.index}, {self.kind}, {what})"


class Cfg:
    """A statement-level control-flow graph for one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: List[Node] = []
        self.edges: List[Edge] = []
        self.entry = -1
        self.exit = -1
        self.raise_exit = -1
        self._succs: Optional[Dict[int, List[Edge]]] = None

    def succs(self, index: int) -> List[Edge]:
        if self._succs is None:
            table: Dict[int, List[Edge]] = {node.index: [] for node in self.nodes}
            for edge in self.edges:
                table[edge.src].append(edge)
            self._succs = table
        return self._succs[index]

    def statements(self) -> List[ast.stmt]:
        """Every source statement of the function body, recursively."""
        out: List[ast.stmt] = []

        def walk(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                out.append(stmt)
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # opaque, matching the builder
                for attr in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, attr, None)
                    if nested:
                        walk(nested)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        walk(handler.body)

        walk(self.func.body)
        return out


#: A dangling out-edge waiting for its destination: (src, cond, polarity).
_Fringe = List[Tuple[int, Optional[ast.expr], Optional[bool]]]


class _LoopFrame:
    __slots__ = ("continue_target", "break_outs")

    def __init__(self, continue_target: int) -> None:
        self.continue_target = continue_target
        self.break_outs: _Fringe = []


class _TryFrame:
    __slots__ = ("handler_entries", "finalbody")

    def __init__(self, handler_entries: List[int], finalbody: List[ast.stmt]) -> None:
        self.handler_entries = handler_entries
        self.finalbody = finalbody


_Frame = Union[_LoopFrame, _TryFrame]


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.cfg = Cfg(func)

    # -- graph primitives ----------------------------------------------
    def _node(self, stmt: Optional[ast.AST], kind: str = "stmt") -> int:
        node = Node(len(self.cfg.nodes), stmt, kind)
        self.cfg.nodes.append(node)
        return node.index

    def _edge(
        self,
        src: int,
        dst: int,
        cond: Optional[ast.expr] = None,
        polarity: Optional[bool] = None,
        kind: str = "flow",
    ) -> None:
        self.cfg.edges.append(Edge(src, dst, cond, polarity, kind))

    def _connect(self, fringe: _Fringe, dst: int, kind: str = "flow") -> None:
        for src, cond, polarity in fringe:
            self._edge(src, dst, cond, polarity, kind)

    # -- unwinding helpers ---------------------------------------------
    def _finals_between(
        self, frames: List[_Frame], stop: Optional[int]
    ) -> List[List[ast.stmt]]:
        """``finally`` bodies between the innermost frame and ``stop``
        (exclusive), innermost first.  ``stop=None`` collects them all."""
        finals: List[List[ast.stmt]] = []
        lower = 0 if stop is None else stop + 1
        for frame in reversed(frames[lower:]):
            if isinstance(frame, _TryFrame) and frame.finalbody:
                finals.append(frame.finalbody)
        return finals

    def _route(
        self,
        fringe: _Fringe,
        finals: List[List[ast.stmt]],
        frames: List[_Frame],
    ) -> _Fringe:
        """Thread ``fringe`` through duplicated copies of ``finals``."""
        for finalbody in finals:
            fringe = self._block(fringe, finalbody, frames)
        return fringe

    def _innermost_handlers(
        self, frames: List[_Frame]
    ) -> Tuple[Optional[int], List[int]]:
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            if isinstance(frame, _TryFrame) and frame.handler_entries:
                return index, frame.handler_entries
        return None, []

    # -- statement dispatch --------------------------------------------
    def _block(
        self, fringe: _Fringe, stmts: Sequence[ast.stmt], frames: List[_Frame]
    ) -> _Fringe:
        for stmt in stmts:
            fringe = self._stmt(fringe, stmt, frames)
        return fringe

    def _exception_edges(self, index: int, frames: List[_Frame]) -> None:
        _, handlers = self._innermost_handlers(frames)
        for handler in handlers:
            self._edge(index, handler, kind="exception")

    def _stmt(
        self, fringe: _Fringe, stmt: ast.stmt, frames: List[_Frame]
    ) -> _Fringe:
        if isinstance(stmt, ast.If):
            return self._if(fringe, stmt, frames)
        if isinstance(stmt, ast.While):
            return self._while(fringe, stmt, frames)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(fringe, stmt, frames)
        if isinstance(stmt, ast.Try):
            return self._try(fringe, stmt, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            index = self._node(stmt)
            self._connect(fringe, index)
            self._exception_edges(index, frames)
            return self._block([(index, None, None)], stmt.body, frames)
        if isinstance(stmt, ast.Return):
            index = self._node(stmt)
            self._connect(fringe, index)
            out = self._route(
                [(index, None, None)], self._finals_between(frames, None), []
            )
            self._connect(out, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            index = self._node(stmt)
            self._connect(fringe, index)
            stop, handlers = self._innermost_handlers(frames)
            out = self._route(
                [(index, None, None)],
                self._finals_between(frames, stop),
                frames[: stop + 1] if stop is not None else [],
            )
            if handlers:
                for handler in handlers:
                    self._connect(out, handler, kind="exception")
            else:
                self._connect(out, self.cfg.raise_exit, kind="exception")
            return []
        if isinstance(stmt, ast.Break):
            index = self._node(stmt)
            self._connect(fringe, index)
            for frame_index in range(len(frames) - 1, -1, -1):
                if isinstance(frames[frame_index], _LoopFrame):
                    loop = frames[frame_index]
                    out = self._route(
                        [(index, None, None)],
                        self._finals_between(frames, frame_index),
                        frames[: frame_index + 1],
                    )
                    loop.break_outs.extend(out)
                    break
            return []
        if isinstance(stmt, ast.Continue):
            index = self._node(stmt)
            self._connect(fringe, index)
            for frame_index in range(len(frames) - 1, -1, -1):
                if isinstance(frames[frame_index], _LoopFrame):
                    loop = frames[frame_index]
                    out = self._route(
                        [(index, None, None)],
                        self._finals_between(frames, frame_index),
                        frames[: frame_index + 1],
                    )
                    self._connect(out, loop.continue_target, kind="back")
                    break
            return []
        # Simple statement (including opaque nested def / class).
        index = self._node(stmt)
        self._connect(fringe, index)
        self._exception_edges(index, frames)
        return [(index, None, None)]

    def _if(self, fringe: _Fringe, stmt: ast.If, frames: List[_Frame]) -> _Fringe:
        test = self._node(stmt, "test")
        self._connect(fringe, test)
        self._exception_edges(test, frames)
        out = self._block([(test, stmt.test, True)], stmt.body, frames)
        if stmt.orelse:
            out += self._block([(test, stmt.test, False)], stmt.orelse, frames)
        else:
            out += [(test, stmt.test, False)]
        return out

    def _while(self, fringe: _Fringe, stmt: ast.While, frames: List[_Frame]) -> _Fringe:
        test = self._node(stmt, "test")
        self._connect(fringe, test)
        self._exception_edges(test, frames)
        loop = _LoopFrame(continue_target=test)
        body_out = self._block([(test, stmt.test, True)], stmt.body, frames + [loop])
        self._connect(body_out, test, kind="back")
        infinite = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        out: _Fringe = []
        if not infinite:
            exhausted: _Fringe = [(test, stmt.test, False)]
            if stmt.orelse:
                exhausted = self._block(exhausted, stmt.orelse, frames)
            out += exhausted
        out += loop.break_outs
        return out

    def _for(
        self, fringe: _Fringe, stmt: Union[ast.For, ast.AsyncFor], frames: List[_Frame]
    ) -> _Fringe:
        test = self._node(stmt, "test")
        self._connect(fringe, test)
        self._exception_edges(test, frames)
        loop = _LoopFrame(continue_target=test)
        body_out = self._block([(test, None, None)], stmt.body, frames + [loop])
        self._connect(body_out, test, kind="back")
        exhausted: _Fringe = [(test, None, None)]
        if stmt.orelse:
            exhausted = self._block(exhausted, stmt.orelse, frames)
        return exhausted + loop.break_outs

    def _try(self, fringe: _Fringe, stmt: ast.Try, frames: List[_Frame]) -> _Fringe:
        entry = self._node(stmt, "try")
        self._connect(fringe, entry)
        self._exception_edges(entry, frames)
        handler_entries = [self._node(h, "handler") for h in stmt.handlers]
        frame = _TryFrame(handler_entries, stmt.finalbody)
        body_out = self._block([(entry, None, None)], stmt.body, frames + [frame])
        if stmt.orelse:
            body_out = self._block(body_out, stmt.orelse, frames + [frame])
        # Handler bodies: exceptions raised inside a handler propagate
        # outwards, but still run this try's finally.
        escape = _TryFrame([], stmt.finalbody)
        for handler, handler_entry in zip(stmt.handlers, handler_entries):
            body_out += self._block(
                [(handler_entry, None, None)], handler.body, frames + [escape]
            )
        if stmt.finalbody:
            body_out = self._block(body_out, stmt.finalbody, frames)
        return body_out


def build_cfg(func: FunctionNode) -> Cfg:
    """Build the statement-level CFG for one function definition."""
    builder = _Builder(func)
    cfg = builder.cfg
    cfg.entry = builder._node(func, ENTRY)
    cfg.exit = builder._node(None, EXIT)
    cfg.raise_exit = builder._node(None, RAISE_EXIT)
    out = builder._block([(cfg.entry, None, None)], func.body, [])
    builder._connect(out, cfg.exit)
    return cfg
