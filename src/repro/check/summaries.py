"""One-level interprocedural call summaries for the check analyses.

Every function definition in the linted file set gets a
:class:`FunctionSummary` computed *intra*-procedurally (no fixpoint over
the call graph — one level of context is enough for the helper-function
shapes this codebase uses):

* ``returns_unit`` / ``param_units`` — from :mod:`repro.check.units`
  inference over the body / parameter naming conventions, feeding the
  caller-side REP101/REP103 checks;
* ``returns_handle`` / ``releases_params`` — from
  :mod:`repro.check.conservation` with parameters modelled as
  pseudo-handles, so ``kernel.alloc_frame`` is recognised as an
  acquisition and ``Prefetcher._return_frame(queue, pfn)`` as a release
  at their call sites;
* ``returns_set`` — does any return value carry unordered-set
  provenance?  Feeds the cross-function extension of REP003.

Call sites resolve a summary in three steps, most precise first:

1. a bare name → a module-level function of the same file;
2. ``self.method(...)`` → a method of the same file, if the method name
   is unambiguous within the file;
3. any other ``obj.method(...)`` → the unique function of that name
   across the whole linted project (ambiguous names resolve to nothing —
   the analyses degrade to intra-procedural rather than guess).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.check.conservation import analyze_conservation
from repro.check.units import NEUTRAL, UnitInference, name_unit

FunctionNode = ast.AST  # FunctionDef | AsyncFunctionDef


@dataclass(frozen=True)
class FunctionSummary:
    """What one level of callers may assume about a function."""

    name: str
    path: str
    is_method: bool
    #: Positional parameter names, ``self`` excluded.
    params: Tuple[str, ...]
    param_units: Dict[str, str]
    returns_unit: Optional[str]
    returns_handle: Optional[str]
    releases_params: FrozenSet[str]
    returns_set: bool


def _positional_params(func: ast.AST) -> Tuple[Tuple[str, ...], bool]:
    arguments = func.args
    names = [arg.arg for arg in (*arguments.posonlyargs, *arguments.args)]
    is_method = bool(names) and names[0] in ("self", "cls")
    if is_method:
        names = names[1:]
    return tuple(names), is_method


def _returns_unit(func: ast.AST) -> Optional[str]:
    """Common known unit of every return value, if there is one."""
    inference = UnitInference()
    env: Dict[str, str] = {}
    for arg in (*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs):
        unit = name_unit(arg.arg)
        if unit is not None:
            env[arg.arg] = unit
    units: List[Optional[str]] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Return) and node.value is not None:
            units.append(inference.unit_of(node.value, env))
        stack.extend(ast.iter_child_nodes(node))
    known = {unit for unit in units if unit is not None and unit != NEUTRAL}
    if len(known) == 1 and all(unit is not None for unit in units) and units:
        return known.pop()
    return None


def _returns_set(func: ast.AST) -> bool:
    """Does any return statement carry unordered-set provenance?"""
    from repro.check.rules import _SetTaint  # late: rules imports us too

    taint = _SetTaint()
    tainted_return = False

    def visit(stmts: List[ast.stmt]) -> None:
        nonlocal tainted_return
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    taint.assign(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                taint.assign(stmt.target, stmt.value)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if taint.expr_is_tainted(stmt.value):
                    tainted_return = True
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if nested:
                    visit(nested)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    visit(handler.body)

    visit(func.body)
    return tainted_return


def summarize_function(func: ast.AST, path: str) -> FunctionSummary:
    params, is_method = _positional_params(func)
    conservation = analyze_conservation(func, params_as_handles=True)
    return FunctionSummary(
        name=func.name,
        path=path,
        is_method=is_method,
        params=params,
        param_units={
            name: unit
            for name in params
            for unit in (name_unit(name),)
            if unit is not None
        },
        returns_unit=_returns_unit(func),
        returns_handle=conservation.returns_handle,
        releases_params=conservation.released_params & frozenset(params),
        returns_set=_returns_set(func),
    )


@dataclass
class ProjectSummary:
    """Summaries for every function in the linted file set."""

    #: path → bare function name → summary (module-level defs only).
    module_functions: Dict[str, Dict[str, FunctionSummary]] = field(default_factory=dict)
    #: path → method name → summary, names ambiguous within a file removed.
    file_methods: Dict[str, Dict[str, FunctionSummary]] = field(default_factory=dict)
    #: name → summary when the name is defined exactly once project-wide.
    unique: Dict[str, FunctionSummary] = field(default_factory=dict)

    def add_file(self, path: str, tree: ast.AST) -> None:
        functions = self.module_functions.setdefault(path, {})
        methods = self.file_methods.setdefault(path, {})
        ambiguous: set = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            summary = summarize_function(node, path)
            if summary.is_method:
                if node.name in methods:
                    ambiguous.add(node.name)
                methods[node.name] = summary
            else:
                functions.setdefault(node.name, summary)
            self._note_global(node.name, summary)
        for name in ambiguous:
            methods.pop(name, None)

    _seen_names: Dict[str, int] = field(default_factory=dict)

    def _note_global(self, name: str, summary: FunctionSummary) -> None:
        count = self._seen_names.get(name, 0) + 1
        self._seen_names[name] = count
        if count == 1:
            self.unique[name] = summary
        else:
            self.unique.pop(name, None)

    def resolve_call(self, call: ast.Call, path: str) -> Optional[FunctionSummary]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.module_functions.get(path, {}).get(func.id)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                local = self.file_methods.get(path, {}).get(func.attr)
                if local is not None:
                    return local
            return self.unique.get(func.attr)
        return None


def build_project(files: List[Tuple[str, ast.AST]]) -> ProjectSummary:
    """Summaries for a set of ``(path, parsed tree)`` pairs."""
    project = ProjectSummary()
    for path, tree in files:
        project.add_file(path, tree)
    return project
