"""Command-line entry point: ``python -m repro.check`` (or ``repro-check``).

Usage::

    python -m repro.check lint src/                # lint a tree (exit 1 on findings)
    python -m repro.check lint file.py --format json
    python -m repro.check lint src/ --format sarif > findings.sarif
    python -m repro.check lint src/ --baseline check-baseline.json
    python -m repro.check lint src/ --write-baseline check-baseline.json
    python -m repro.check rules                    # print the rule catalogue

Exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.check.baseline import apply_baseline, load_baseline, write_baseline
from repro.check.linter import lint_paths
from repro.check.rules import RULES, UNUSED_PRAGMA
from repro.check.sarif import to_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Determinism linter and dataflow analyses for the DES core.",
    )
    commands = parser.add_subparsers(dest="command")

    lint = commands.add_parser("lint", help="lint files/directories")
    lint.add_argument("paths", nargs="+", metavar="PATH", help="files or directories")
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="drop findings recorded in this baseline file "
        "(see repro.check.baseline)",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline and "
        "exit 0",
    )

    commands.add_parser("rules", help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "rules":
        width = max(len(rule_id) for rule_id in RULES)
        print(f"{UNUSED_PRAGMA.ljust(width)}  unused-pragma: allow[...] that suppresses nothing")
        for rule in RULES.values():
            print(f"{rule.id.ljust(width)}  {rule.name}: {rule.summary}")
        return 0

    if args.command != "lint":
        parser.print_usage(sys.stderr)
        return 2

    diagnostics = lint_paths(args.paths)
    if args.baseline:
        diagnostics = apply_baseline(diagnostics, load_baseline(args.baseline))
    if args.write_baseline:
        write_baseline(args.write_baseline, diagnostics)
        print(
            f"baseline with {len(diagnostics)} finding(s) written to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "path": d.path,
                        "line": d.line,
                        "col": d.col,
                        "rule": d.rule,
                        "message": d.message,
                    }
                    for d in diagnostics
                ],
                indent=1,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(to_sarif(diagnostics), indent=1))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        if diagnostics:
            print(f"{len(diagnostics)} finding(s)", file=sys.stderr)
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
