"""File-level driver for the determinism linter.

Parses each file once, runs every registered rule (see
:mod:`repro.check.rules`), then applies per-line suppression pragmas::

    started = time.monotonic()  # repro: allow[REP001] reason=progress timing

A pragma suppresses diagnostics of its rule whose source span covers the
pragma's line.  Pragmas that suppress nothing are themselves reported as
``REP000`` (unused suppression) — stale pragmas hide future violations,
so the tree must not accumulate them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Pragma comments carry ``allow[REP001] reason=...`` after the marker
#: prefix; the reason is free text to the end of the comment and is
#: mandatory — a suppression without a recorded justification is
#: indistinguishable from a mistake a year later.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>REP\d{3})\]\s*(?:reason=(?P<reason>.*))?$"
)

#: Marks the dispatch loops whose cost is pinned by the recorded BENCH
#: trajectory; the REP12x hot-path rules fire only inside marked
#: functions (see :mod:`repro.check.hotpath`).
_HOT_PATH_RE = re.compile(r"#\s*repro:\s*hot-path\s*$")


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation (or pragma problem) at a source location."""

    path: str
    line: int
    col: int
    end_line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rule: str
    reason: str


def _iter_comments(source: str) -> Iterable[Tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every real comment token.

    Tokenising (rather than text-scanning lines) keeps pragma-shaped text
    inside string literals — like the examples in this module — inert.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def _find_pragmas(
    path: str, source: str
) -> Tuple[List[Pragma], List[Diagnostic], Set[int]]:
    pragmas: List[Pragma] = []
    problems: List[Diagnostic] = []
    hot_lines: Set[int] = set()
    for lineno, col, text in _iter_comments(source):
        if "repro:" not in text:
            continue
        if _HOT_PATH_RE.search(text.rstrip()):
            hot_lines.add(lineno)
            continue
        match = _PRAGMA_RE.search(text.rstrip())
        if match is None:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col + 1,
                    lineno,
                    "REP000",
                    "malformed repro pragma — expected "
                    "'# repro: allow[REPnnn] reason=...'",
                )
            )
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col + 1,
                    lineno,
                    "REP000",
                    f"allow[{match.group('rule')}] pragma without a reason= "
                    "justification",
                )
            )
            continue
        pragmas.append(Pragma(lineno, match.group("rule"), reason))
    return pragmas, problems, hot_lines


def lint_source(path: str, source: str, project: object = None) -> List[Diagnostic]:
    """Lint one file's source; returns diagnostics sorted by location.

    ``project`` carries whole-tree call summaries when linting a file
    set (see :func:`lint_paths`); without one, summaries are built from
    this file alone, so single-file lints still resolve local calls.
    """
    from repro.check.rules import RULES, LintContext

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Diagnostic(
                path,
                error.lineno or 1,
                (error.offset or 0) + 1,
                error.lineno or 1,
                "REP000",
                f"syntax error: {error.msg}",
            )
        ]

    pragmas, problems, hot_lines = _find_pragmas(path, source)
    ctx = LintContext.build(path, tree, project=project, hot_lines=hot_lines)
    raw: List[Diagnostic] = []
    for registered in RULES.values():
        raw.extend(registered.check(ctx))
    used: Dict[int, bool] = {index: False for index in range(len(pragmas))}
    kept: List[Diagnostic] = []
    for diagnostic in raw:
        suppressed = False
        for index, pragma in enumerate(pragmas):
            if pragma.rule == diagnostic.rule and (
                diagnostic.line <= pragma.line <= diagnostic.end_line
            ):
                used[index] = True
                suppressed = True
        if not suppressed:
            kept.append(diagnostic)
    for index, pragma in enumerate(pragmas):
        if not used[index]:
            kept.append(
                Diagnostic(
                    path,
                    pragma.line,
                    1,
                    pragma.line,
                    "REP000",
                    f"unused allow[{pragma.rule}] pragma — nothing on this "
                    "line violates the rule; remove it",
                )
            )
    kept.extend(problems)
    kept.sort(key=lambda d: (d.line, d.col, d.rule))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    seen = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            seen.extend(sorted(root.rglob("*.py")))
        else:
            seen.append(root)
    # Stable order, duplicates removed (resolved paths are comparable).
    unique = sorted({path.resolve() for path in seen})
    return [path for path in unique if path.suffix == ".py"]


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``paths``.

    Two-phase: first parse the whole file set and build one-level call
    summaries for every function, then lint each file against that
    project context — this is what makes the REP10x/REP11x analyses and
    the REP003 taint pass see across function boundaries.
    """
    from repro.check.summaries import build_project

    sources: List[Tuple[str, str]] = []
    parsed: List[Tuple[str, ast.AST]] = []
    for path in iter_python_files(paths):
        text = path.read_text()
        sources.append((str(path), text))
        try:
            parsed.append((str(path), ast.parse(text, filename=str(path))))
        except SyntaxError:
            pass  # lint_source reports it; no summaries from broken files
    project = build_project(parsed)
    diagnostics: List[Diagnostic] = []
    for path, text in sources:
        diagnostics.extend(lint_source(path, text, project=project))
    return diagnostics
