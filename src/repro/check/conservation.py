"""Resource-conservation analysis (REP111 frame leaks, REP112 PMSHR leaks).

The static twin of ``repro/faults/invariants.py``: proves that every
acquisition of a scarce simulated resource — a free-list frame
(``FreePageQueue.pop`` / ``FramePool.try_alloc`` / functions whose
summary says they return a frame) or a PMSHR entry (``Pmshr.allocate`` /
``lookup_or_allocate``) — reaches a release or an ownership transfer on
*every* CFG path, including exception edges and fault-degrade branches.

Mechanics: each acquisition site becomes a *handle*; locals bound to the
handle (including aliases like ``pfn = pop.pfn``) point at it, and the
handle carries a set of per-path statuses (``acq`` = still owned).
Releases and escapes clear the status; branch conditions refine it —
``if pop.empty:`` / ``entry is None`` / ``pfn < 0`` mean the acquisition
failed on that edge, and a false ``created`` flag from
``lookup_or_allocate`` means another in-flight miss owns the entry.  A
handle whose status still contains ``acq`` at the function exit (normal
or raise) leaks.

Ownership transfers recognised as releases: ``give_back`` / ``refill``,
``FramePool.free``, PTE installs (``install_resident_page`` /
``hw_install_page`` / ``map_cached_page``), ``Pmshr.release``,
``*updater*.apply``, ``Completion.fire``, returning or yielding the
handle, storing it into an attribute or container, and passing it to a
function whose one-level summary releases that parameter.  Batch APIs
returning lists (``alloc_batch``) are deliberately untracked.

The same machinery also computes function summaries: with
``params_as_handles=True`` every parameter starts as a pseudo-handle, so
a helper that provably disposes of an argument on all paths exports a
``releases_params`` fact, and a function returning a still-owned handle
exports ``returns_handle``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.cfg import Cfg, Node, build_cfg
from repro.check.dataflow import ForwardAnalysis, run_forward

ACQ = "acq"
OK = "ok"

Finding = Tuple[str, ast.AST, str]
Resolver = Callable[[ast.Call], Optional[object]]

#: A variable's possible acquisition sites, kept as a sorted tuple so
#: every consumer iterates them in a stable order.
Hids = Tuple[int, ...]


def _union(left: Hids, right: Hids) -> Hids:
    if not right:
        return left
    if not left:
        return right
    return tuple(sorted(set(left) | set(right)))

#: method name → substrings, one of which must appear in the receiver's
#: dotted text (None = any receiver) for the call to count as a release
#: of its handle-valued arguments.
_RELEASERS: Dict[str, Optional[Tuple[str, ...]]] = {
    "give_back": None,
    "refill": None,
    "free": ("pool", "frame"),
    "release": ("pmshr",),
    "install_resident_page": None,
    "hw_install_page": None,
    "map_cached_page": None,
    "apply": ("updater",),
    "fire": None,
}


def _dotted(expr: ast.expr) -> str:
    """Loose dotted rendering of a call receiver (args elided)."""
    parts: List[str] = []
    node: Optional[ast.expr] = expr
    while node is not None:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            node = None
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            node = None
    return ".".join(reversed(parts))


def _acquisition_kind(call: ast.Call) -> Optional[Tuple[str, bool]]:
    """(resource kind, binds created-flag) for an acquiring call."""
    if not isinstance(call.func, ast.Attribute):
        return None
    receiver = _dotted(call.func.value).lower()
    method = call.func.attr
    if method == "pop" and ("free_queue" in receiver or "free_page" in receiver):
        return ("frame", False)
    if method == "try_alloc" and ("pool" in receiver or "frame" in receiver):
        return ("frame", False)
    if method == "allocate" and "pmshr" in receiver:
        return ("pmshr", False)
    if method == "lookup_or_allocate" and "pmshr" in receiver:
        return ("pmshr", True)
    return None


def _unwrap_call(expr: ast.expr) -> Optional[ast.Call]:
    if isinstance(expr, (ast.Await, ast.YieldFrom)):
        expr = expr.value
    return expr if isinstance(expr, ast.Call) else None


@dataclass
class _State:
    """One dataflow fact: variable bindings plus per-handle statuses.

    A variable maps to a sorted tuple of acquisition sites because a
    rebound name (``pfn = try_alloc(); … pfn = try_alloc()``) refers to
    different sites on different joined paths; releasing through the
    name must settle every site it may denote.
    """

    vars: Dict[str, "Hids"] = field(default_factory=dict)
    flags: Dict[str, int] = field(default_factory=dict)
    handles: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def copy(self) -> "_State":
        return _State(dict(self.vars), dict(self.flags), dict(self.handles))

    def resolve(self, expr: ast.expr) -> "Hids":
        """Handles bound to ``expr`` (a name, or any attribute off one)."""
        node = expr
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            return self.vars.get(node.id, ())
        return ()

    def settle(self, hids: "Hids") -> None:
        for hid in hids:
            if hid in self.handles:
                self.handles[hid] = frozenset({OK})


@dataclass
class _HandleMeta:
    kind: str
    stmt: ast.AST
    param: Optional[str] = None


class ConservationAnalysis(ForwardAnalysis):
    def __init__(
        self,
        resolver: Optional[Resolver],
        params_as_handles: bool,
    ) -> None:
        self.resolver = resolver
        self.params_as_handles = params_as_handles
        self.meta: Dict[int, _HandleMeta] = {}

    # -- lattice -------------------------------------------------------
    def initial_state(self, cfg: Cfg) -> _State:
        state = _State()
        if self.params_as_handles:
            arguments = cfg.func.args
            params = [
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ]
            for position, param in enumerate(params):
                if param.arg == "self":
                    continue
                hid = -(position + 1)
                state.vars[param.arg] = (hid,)
                state.handles[hid] = frozenset({ACQ})
                self.meta[hid] = _HandleMeta("param", cfg.func, param.arg)
        return state

    def join(self, left: _State, right: _State) -> _State:
        merged = _State()
        for name in set(left.vars) | set(right.vars):
            merged.vars[name] = _union(
                left.vars.get(name, ()), right.vars.get(name, ())
            )
        merged.flags = {
            name: hid
            for name, hid in left.flags.items()
            if right.flags.get(name) == hid
        }
        for hid in set(left.handles) | set(right.handles):
            merged.handles[hid] = left.handles.get(hid, frozenset()) | right.handles.get(
                hid, frozenset()
            )
        return merged

    # -- transfer ------------------------------------------------------
    def transfer(self, node: Node, state: _State) -> _State:
        stmt = node.stmt
        if stmt is None or node.kind in ("entry", "exit", "raise-exit"):
            return state
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state
        out = state.copy()
        for expr in self._effect_exprs(node):
            self._apply_calls(expr, out)
        if node.kind == "stmt":
            if isinstance(stmt, ast.Assign):
                self._assign(stmt.targets, stmt.value, stmt, node.index, out)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign([stmt.target], stmt.value, stmt, node.index, out)
            elif isinstance(stmt, ast.AugAssign):
                self._forget_target(stmt.target, out)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                out.settle(out.resolve(stmt.value))
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)
            ):
                value = stmt.value.value
                if value is not None:
                    out.settle(out.resolve(value))
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    self._forget_target(target, out)
        elif node.kind == "test" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._forget_target(stmt.target, out)
        return out

    def _effect_exprs(self, node: Node) -> List[ast.expr]:
        stmt = node.stmt
        if node.kind == "test":
            if isinstance(stmt, (ast.If, ast.While)):
                return [stmt.test]
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                return [stmt.iter]
            return []
        if node.kind in ("try", "handler"):
            return []
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        return [child for child in ast.iter_child_nodes(stmt) if isinstance(child, ast.expr)]

    def _apply_calls(self, expr: ast.expr, state: _State) -> None:
        for call in (n for n in ast.walk(expr) if isinstance(n, ast.Call)):
            name = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else call.func.id
                if isinstance(call.func, ast.Name)
                else None
            )
            required = _RELEASERS.get(name or "")
            if name in _RELEASERS and (
                required is None
                or any(
                    token in _dotted(call.func).lower() for token in required
                )
            ):
                for arg in call.args:
                    state.settle(state.resolve(arg))
                if isinstance(call.func, ast.Attribute):
                    state.settle(state.resolve(call.func.value))
                continue
            summary = self.resolver(call) if self.resolver is not None else None
            released = getattr(summary, "releases_params", None)
            if summary is not None and released:
                params: Tuple[str, ...] = getattr(summary, "params", ())
                for position, arg in enumerate(call.args):
                    if position < len(params) and params[position] in released:
                        state.settle(state.resolve(arg))
                for keyword in call.keywords:
                    if keyword.arg in released:
                        state.settle(state.resolve(keyword.value))

    def _assign(
        self,
        targets: List[ast.expr],
        value: ast.expr,
        stmt: ast.stmt,
        hid: int,
        state: _State,
    ) -> None:
        call = _unwrap_call(value)
        acquired = _acquisition_kind(call) if call is not None else None
        if acquired is None and call is not None and self.resolver is not None:
            summary = self.resolver(call)
            kind = getattr(summary, "returns_handle", None)
            if kind is not None:
                acquired = (kind, False)
        if acquired is not None:
            kind, has_flag = acquired
            self.meta.setdefault(hid, _HandleMeta(kind, stmt))
            state.handles[hid] = frozenset({ACQ})
            for target in targets:
                if isinstance(target, ast.Name):
                    state.vars[target.id] = (hid,)
                elif (
                    has_flag
                    and isinstance(target, ast.Tuple)
                    and len(target.elts) == 2
                    and all(isinstance(e, ast.Name) for e in target.elts)
                ):
                    state.vars[target.elts[0].id] = (hid,)
                    state.flags[target.elts[1].id] = hid
                else:
                    # Acquisition into a structure we cannot track: treat
                    # as an ownership transfer, not a leak.
                    state.settle((hid,))
            return
        source = (
            state.resolve(value)
            if isinstance(value, (ast.Name, ast.Attribute))
            else ()
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if source:
                    state.vars[target.id] = source
                else:
                    state.vars.pop(target.id, None)
                    state.flags.pop(target.id, None)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                # Publishing the handle into an object or container is an
                # ownership transfer (someone else releases it).
                state.settle(source)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._forget_target(element, state)

    def _forget_target(self, target: ast.expr, state: _State) -> None:
        if isinstance(target, ast.Name):
            state.vars.pop(target.id, None)
            state.flags.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._forget_target(element, state)

    # -- refinement ----------------------------------------------------
    def refine(
        self, cond: ast.expr, polarity: bool, state: _State
    ) -> Optional[_State]:
        while isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not):
            cond = cond.operand
            polarity = not polarity
        if isinstance(cond, ast.BoolOp):
            wanted = isinstance(cond.op, ast.And)
            if polarity == wanted:
                for value in cond.values:
                    refined = self.refine(value, polarity, state)
                    if refined is not None:
                        state = refined
            return state
        invalid = self._invalid_on(cond, polarity, state)
        if invalid:
            out = state.copy()
            out.settle(invalid)
            return out
        return state

    def _invalid_on(
        self, cond: ast.expr, polarity: bool, state: _State
    ) -> Hids:
        """Handles proven absent/foreign when ``cond`` is ``polarity``."""
        nothing: Hids = ()
        if isinstance(cond, ast.Attribute) and cond.attr == "empty":
            return state.resolve(cond.value) if polarity else nothing
        if isinstance(cond, ast.Name):
            if cond.id in state.flags and not polarity:
                return (state.flags[cond.id],)
            if cond.id in state.vars and not polarity:
                return state.vars[cond.id]
            return nothing
        if isinstance(cond, ast.Compare) and len(cond.ops) == 1:
            op = cond.ops[0]
            left, right = cond.left, cond.comparators[0]
            if isinstance(right, ast.Constant) and right.value is None:
                hids = state.resolve(left)
                if isinstance(op, ast.Is) and polarity:
                    return hids
                if isinstance(op, ast.IsNot) and not polarity:
                    return hids
                return nothing
            if (
                isinstance(right, ast.Constant)
                and isinstance(right.value, (int, float))
                and right.value == 0
            ):
                hids = state.resolve(left)
                if isinstance(op, ast.Lt) and polarity:
                    return hids
                if isinstance(op, (ast.GtE, ast.Gt)) and not polarity:
                    return hids
        return nothing


@dataclass
class ConservationResult:
    leaks: List[Finding]
    returns_handle: Optional[str]
    released_params: FrozenSet[str]


_RULE_BY_KIND = {"frame": "REP111", "pmshr": "REP112"}
_WHAT_BY_KIND = {
    "frame": "free-list frame",
    "pmshr": "PMSHR entry",
}


def analyze_conservation(
    func: ast.AST,
    resolver: Optional[Resolver] = None,
    params_as_handles: bool = False,
) -> ConservationResult:
    """Run the conservation analysis over one function."""
    analysis = ConservationAnalysis(resolver, params_as_handles)
    cfg = build_cfg(func)
    in_states = run_forward(cfg, analysis)

    leaked: Dict[int, str] = {}
    for exit_index, route in ((cfg.exit, "return"), (cfg.raise_exit, "raise")):
        state = in_states.get(exit_index)
        if state is None:
            continue
        for hid, status in state.handles.items():
            if ACQ in status and hid not in leaked:
                leaked[hid] = route

    returns_handle: Optional[str] = None
    for node in cfg.nodes:
        if not (node.kind == "stmt" and isinstance(node.stmt, ast.Return)):
            continue
        state = in_states.get(node.index)
        if state is None or node.stmt.value is None:
            continue
        for hid in state.resolve(node.stmt.value):
            if ACQ not in state.handles.get(hid, frozenset()):
                continue
            meta = analysis.meta.get(hid)
            if meta is not None and meta.kind in _RULE_BY_KIND:
                returns_handle = meta.kind
            # A returned handle is the caller's problem, not a leak here.
            leaked.pop(hid, None)

    findings: List[Finding] = []
    for hid, route in sorted(
        leaked.items(), key=lambda item: getattr(analysis.meta[item[0]].stmt, "lineno", 0)
    ):
        meta = analysis.meta[hid]
        if meta.kind not in _RULE_BY_KIND:
            continue  # pseudo-handles (parameters) are summary-only facts
        findings.append(
            (
                _RULE_BY_KIND[meta.kind],
                meta.stmt,
                f"{_WHAT_BY_KIND[meta.kind]} acquired here is not released "
                f"or installed on every path (can leak at function "
                f"{route}) — the static twin of the runtime conservation "
                "invariant",
            )
        )

    released: FrozenSet[str] = frozenset()
    if params_as_handles:
        names: Set[str] = set()
        for hid, meta in analysis.meta.items():
            if hid >= 0 or meta.param is None:
                continue
            still_held = False
            seen_exit = False
            for exit_index in (cfg.exit, cfg.raise_exit):
                state = in_states.get(exit_index)
                if state is None:
                    continue
                seen_exit = True
                if ACQ in state.handles.get(hid, frozenset()):
                    still_held = True
            if seen_exit and not still_held:
                names.add(meta.param)
        released = frozenset(names)

    return ConservationResult(findings, returns_handle, released)
