"""A small forward dataflow engine over :mod:`repro.check.cfg` graphs.

Analyses subclass :class:`ForwardAnalysis` and provide a join-semilattice
of states plus a transfer function; :func:`run_forward` iterates a
worklist to the fixpoint and returns the IN-state of every reachable
node.  Two hooks make the engine fit the repro analyses:

* *edge refinement* — condition-labelled edges (``if x is None:`` …) call
  :meth:`ForwardAnalysis.refine` so path-sensitive facts (handle validity,
  unit narrowing) can be sharpened per branch, or the edge declared
  infeasible by returning ``None``;
* *exception edges* propagate the **pre**-state of the raising statement,
  since the exception may fire before the statement's effect lands.

States must be usable with ``==`` (the engine detects convergence by
equality) and must never be mutated in place — ``transfer``/``join``
return fresh values.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Optional

import ast

from repro.check.cfg import Cfg, Node

State = Any


class ForwardAnalysis:
    """Base class for forward dataflow analyses (override the hooks)."""

    def initial_state(self, cfg: Cfg) -> State:
        raise NotImplementedError

    def transfer(self, node: Node, state: State) -> State:
        """OUT-state of ``node`` given its IN-state (pure, no mutation)."""
        return state

    def join(self, left: State, right: State) -> State:
        """Least upper bound of two states meeting at a node."""
        raise NotImplementedError

    def refine(
        self, cond: ast.expr, polarity: bool, state: State
    ) -> Optional[State]:
        """Sharpen ``state`` knowing ``cond`` evaluated to ``polarity``.

        Return ``None`` to declare the edge infeasible.
        """
        return state


def run_forward(cfg: Cfg, analysis: ForwardAnalysis) -> Dict[int, State]:
    """Iterate to fixpoint; returns node index → IN-state (reachable only)."""
    in_states: Dict[int, State] = {cfg.entry: analysis.initial_state(cfg)}
    worklist = deque([cfg.entry])
    queued = {cfg.entry}
    # Safety valve: finite lattices converge in O(nodes * lattice height);
    # anything past this bound is an analysis bug, not a big function.
    budget = 256 * (len(cfg.nodes) + 1)
    while worklist:
        budget -= 1
        if budget < 0:
            raise RuntimeError(
                f"dataflow did not converge on {cfg.func.name!r}"
            )
        index = worklist.popleft()
        queued.discard(index)
        pre = in_states[index]
        post = analysis.transfer(cfg.nodes[index], pre)
        for edge in cfg.succs(index):
            state = pre if edge.kind == "exception" else post
            if edge.cond is not None and edge.polarity is not None:
                state = analysis.refine(edge.cond, edge.polarity, state)
                if state is None:
                    continue
            current = in_states.get(edge.dst)
            merged = state if current is None else analysis.join(current, state)
            if current is None or merged != current:
                in_states[edge.dst] = merged
                if edge.dst not in queued:
                    queued.add(edge.dst)
                    worklist.append(edge.dst)
    return in_states
