"""Unit-consistency analysis (REP101–REP103).

Infers a physical unit for every expression from three sources: naming
conventions (``*_ns``, ``*_cycles``, ``*_us``, ``*_instructions``,
``*_ghz``), the sanctioned converters on :class:`repro.config.CpuConfig`
(``cycles_to_ns`` / ``ns_to_cycles`` / ``kernel_ns_to_instructions``),
and one-level call summaries (:mod:`repro.check.summaries`).  A forward
dataflow pass propagates units through local assignments, so a value
keeps its unit when it moves between differently-named locals.

The lattice is flat: a value is either a *known* unit, ``neutral``
(bare numeric constants — compatible with anything), or unknown
(absent).  Joining two different known units yields unknown; the
analysis only fires on provable mixes, never on missing information.

Unit algebra for ``*`` and ``/`` encodes the two sanctioned conversions
(``ns × ghz → cycles``, ``cycles / ghz → ns``); everything else that
crosses units degrades to unknown, which keeps deliberate rescales like
``mean_us = total_ns / 1000.0`` quiet (division and multiplication are
exempt from the suffix-assignment check for the same reason).

Findings (rule id, ast node, message) are collected during a single
reporting sweep over the fixpoint states; the rule wrapper in
:mod:`repro.check.rules` turns them into diagnostics.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.cfg import Cfg, Node, build_cfg
from repro.check.dataflow import ForwardAnalysis, run_forward

NS = "ns"
US = "us"
MS = "ms"
CYCLES = "cycles"
INSTRUCTIONS = "instructions"
GHZ = "ghz"
#: Bare numeric constants: compatible with every unit.
NEUTRAL = "neutral"

_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_ns", NS),
    ("_us", US),
    ("_ms", MS),
    ("_cycles", CYCLES),
    ("_instructions", INSTRUCTIONS),
    ("_instr", INSTRUCTIONS),
    ("_ghz", GHZ),
)

_EXACT = {"ns": NS, "us": US, "ms": MS, "cycles": CYCLES, "ghz": GHZ}

#: Sanctioned converters (attribute name → (argument unit, result unit)).
CONVERTERS: Dict[str, Tuple[str, str]] = {
    "cycles_to_ns": (CYCLES, NS),
    "ns_to_cycles": (NS, CYCLES),
    "kernel_ns_to_instructions": (NS, INSTRUCTIONS),
}

#: Calls whose delay/duration argument is nanoseconds, and its position.
NS_SINKS: Dict[str, int] = {
    "schedule": 0,
    "schedule_at": 0,
    "schedule_transient": 0,
    "stall": 0,
    "kernel_phase": 0,
    "Delay": 0,
    "timer": 1,
}

#: Builtins that preserve the unit of their arguments.
_UNIT_PRESERVING = {"min", "max", "abs", "round", "int", "float"}

Finding = Tuple[str, ast.AST, str]
Resolver = Callable[[ast.Call], Optional[object]]


def name_unit(name: str) -> Optional[str]:
    """Unit implied by an identifier's naming convention, if any."""
    if name in _EXACT:
        return _EXACT[name]
    for suffix, unit in _SUFFIXES:
        if name.endswith(suffix):
            return unit
    return None


def _join_units(left: Optional[str], right: Optional[str]) -> Optional[str]:
    if left == right:
        return left
    if left == NEUTRAL:
        return right
    if right == NEUTRAL:
        return left
    return None


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class UnitInference:
    """Expression-level unit inference with optional finding collection."""

    def __init__(self, resolver: Optional[Resolver] = None) -> None:
        self.resolver = resolver

    # -- core ----------------------------------------------------------
    def unit_of(
        self,
        node: ast.expr,
        env: Dict[str, str],
        problems: Optional[List[Finding]] = None,
    ) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return NEUTRAL
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return name_unit(node.id)
        if isinstance(node, ast.Attribute):
            return name_unit(node.attr)
        if isinstance(node, ast.Subscript):
            # Container suffixes describe the elements: ``delays_ns[i]``.
            base = self.unit_of(node.value, env, problems)
            return None if base == NEUTRAL else base
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand, env, problems)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env, problems)
        if isinstance(node, ast.BoolOp):
            unit: Optional[str] = NEUTRAL
            for value in node.values:
                unit = _join_units(unit, self.unit_of(value, env, problems))
            return unit
        if isinstance(node, ast.IfExp):
            self.unit_of(node.test, env, problems)
            return _join_units(
                self.unit_of(node.body, env, problems),
                self.unit_of(node.orelse, env, problems),
            )
        if isinstance(node, ast.Compare):
            self._compare(node, env, problems)
            return None
        if isinstance(node, ast.Call):
            return self._call(node, env, problems)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.unit_of(element, env, problems)
            return None
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            if getattr(node, "value", None) is not None:
                self.unit_of(node.value, env, problems)
            return None
        if isinstance(node, ast.Starred):
            return self.unit_of(node.value, env, problems)
        return None

    def _binop(
        self,
        node: ast.BinOp,
        env: Dict[str, str],
        problems: Optional[List[Finding]],
    ) -> Optional[str]:
        left = self.unit_of(node.left, env, problems)
        right = self.unit_of(node.right, env, problems)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                problems is not None
                and left not in (None, NEUTRAL)
                and right not in (None, NEUTRAL)
                and left != right
            ):
                op = "+" if isinstance(node.op, ast.Add) else "-"
                problems.append(
                    (
                        "REP101",
                        node,
                        f"mixed-unit arithmetic: {left} {op} {right} — "
                        "convert with CpuConfig.cycles_to_ns/ns_to_cycles "
                        "before combining",
                    )
                )
            return _join_units(left, right)
        if isinstance(node.op, ast.Mult):
            pair = {left, right}
            if pair == {NS, GHZ}:
                return CYCLES
            return _join_units(left, right) if NEUTRAL in (left, right) else None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left == CYCLES and right == GHZ:
                return NS
            if right == NEUTRAL:
                return left
            if left is not None and left == right:
                return NEUTRAL
            return None
        if isinstance(node.op, ast.Mod):
            if right in (NEUTRAL, left):
                return left
            return None
        return None

    def _compare(
        self,
        node: ast.Compare,
        env: Dict[str, str],
        problems: Optional[List[Finding]],
    ) -> None:
        operands = [node.left, *node.comparators]
        units = [self.unit_of(operand, env, problems) for operand in operands]
        if problems is None:
            return
        for op, (left, right) in zip(node.ops, zip(units, units[1:])):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            if (
                left not in (None, NEUTRAL)
                and right not in (None, NEUTRAL)
                and left != right
            ):
                problems.append(
                    (
                        "REP102",
                        node,
                        f"comparison between different units ({left} vs "
                        f"{right}) — convert to a common unit first",
                    )
                )

    def _call(
        self,
        node: ast.Call,
        env: Dict[str, str],
        problems: Optional[List[Finding]],
    ) -> Optional[str]:
        arg_units = [self.unit_of(arg, env, problems) for arg in node.args]
        for keyword in node.keywords:
            self.unit_of(keyword.value, env, problems)
        name = _call_name(node.func)

        if name in CONVERTERS:
            expected, result = CONVERTERS[name]
            if (
                problems is not None
                and arg_units
                and arg_units[0] not in (None, NEUTRAL, expected)
            ):
                problems.append(
                    (
                        "REP103",
                        node,
                        f"{name}() expects {expected} but the argument is "
                        f"{arg_units[0]}",
                    )
                )
            return result

        if problems is not None and name in NS_SINKS:
            position = NS_SINKS[name]
            if position < len(arg_units) and arg_units[position] not in (
                None,
                NEUTRAL,
                NS,
            ):
                problems.append(
                    (
                        "REP103",
                        node,
                        f"{name}() takes a nanosecond delay but this "
                        f"argument is {arg_units[position]} — convert with "
                        "CpuConfig.cycles_to_ns (or the matching factor) "
                        "first",
                    )
                )

        if name in _UNIT_PRESERVING and arg_units:
            unit: Optional[str] = NEUTRAL
            for index, present in enumerate(arg_units):
                merged = _join_units(unit, present)
                if (
                    problems is not None
                    and name in {"min", "max"}
                    and merged is None
                    and unit not in (None, NEUTRAL)
                    and present not in (None, NEUTRAL)
                ):
                    problems.append(
                        (
                            "REP101",
                            node,
                            f"{name}() mixes {unit} and {present} operands",
                        )
                    )
                unit = merged
            return unit

        summary = self.resolver(node) if self.resolver is not None else None
        if summary is not None:
            self._check_summary_args(node, arg_units, summary, problems)
            return getattr(summary, "returns_unit", None)
        return None

    def _check_summary_args(
        self,
        node: ast.Call,
        arg_units: List[Optional[str]],
        summary: object,
        problems: Optional[List[Finding]],
    ) -> None:
        if problems is None:
            return
        params: Tuple[str, ...] = getattr(summary, "params", ())
        param_units: Dict[str, str] = getattr(summary, "param_units", {})
        for position, unit in enumerate(arg_units):
            if position >= len(params) or unit in (None, NEUTRAL):
                continue
            expected = param_units.get(params[position])
            if expected is not None and expected != unit:
                problems.append(
                    (
                        "REP103",
                        node,
                        f"argument {params[position]!r} of "
                        f"{getattr(summary, 'name', '?')}() expects "
                        f"{expected} but this value is {unit}",
                    )
                )


class UnitAnalysis(ForwardAnalysis):
    """Propagates known units through local assignments."""

    def __init__(self, inference: UnitInference) -> None:
        self.inference = inference

    def initial_state(self, cfg: Cfg) -> Dict[str, str]:
        env: Dict[str, str] = {}
        arguments = cfg.func.args
        params = [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]
        for param in params:
            unit = name_unit(param.arg)
            if unit is not None:
                env[param.arg] = unit
        return env

    def join(self, left: Dict[str, str], right: Dict[str, str]) -> Dict[str, str]:
        return {
            key: value
            for key, value in left.items()
            if right.get(key) == value
        }

    def _bind(
        self, env: Dict[str, str], target: ast.expr, unit: Optional[str]
    ) -> None:
        if isinstance(target, ast.Name):
            if unit not in (None, NEUTRAL):
                env[target.id] = unit
            else:
                env.pop(target.id, None)
                suffix = name_unit(target.id)
                if suffix is not None:
                    env[target.id] = suffix
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(env, element, None)

    def transfer(self, node: Node, state: Dict[str, str]) -> Dict[str, str]:
        stmt = node.stmt
        env = dict(state)
        if node.kind == "stmt":
            if isinstance(stmt, ast.Assign):
                unit = self.inference.unit_of(stmt.value, env)
                for target in stmt.targets:
                    self._bind(env, target, unit)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                unit = self.inference.unit_of(stmt.value, env)
                self._bind(env, stmt.target, unit)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    left = env.get(stmt.target.id) or name_unit(stmt.target.id)
                    right = self.inference.unit_of(stmt.value, env)
                    self._bind(env, stmt.target, _join_units(left, right))
        elif node.kind == "test" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(env, stmt.target, self.inference.unit_of(stmt.iter, env))
        return env


def _top_level_exprs(node: Node) -> List[ast.expr]:
    stmt = node.stmt
    if node.kind == "test":
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        return []
    if node.kind != "stmt":
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, (ast.Return, ast.Raise)):
        value = getattr(stmt, "value", None) or getattr(stmt, "exc", None)
        return [value] if value is not None else []
    if isinstance(stmt, ast.Assert):
        return [stmt.test]
    return []


def analyze_units(
    func: ast.AST, resolver: Optional[Resolver] = None
) -> List[Finding]:
    """Run the unit analysis over one function; returns findings."""
    inference = UnitInference(resolver)
    analysis = UnitAnalysis(inference)
    cfg = build_cfg(func)
    in_states = run_forward(cfg, analysis)
    findings: List[Finding] = []
    seen = set()
    for node in cfg.nodes:
        env = in_states.get(node.index)
        if env is None:
            continue
        problems: List[Finding] = []
        for expr in _top_level_exprs(node):
            inference.unit_of(expr, env, problems)
        stmt = node.stmt
        if node.kind == "stmt" and isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if value is not None and not (
                isinstance(value, ast.BinOp)
                and isinstance(value.op, (ast.Mult, ast.Div, ast.FloorDiv))
            ):
                unit = inference.unit_of(value, env)
                if unit not in (None, NEUTRAL):
                    for target in targets:
                        declared = None
                        if isinstance(target, ast.Name):
                            declared = name_unit(target.id)
                        elif isinstance(target, ast.Attribute):
                            declared = name_unit(target.attr)
                        if declared is not None and declared != unit:
                            problems.append(
                                (
                                    "REP101",
                                    stmt,
                                    f"assigning a {unit} value to "
                                    f"{declared}-suffixed name — convert or "
                                    "rename",
                                )
                            )
        for finding in problems:
            rule_id, where, message = finding
            key = (
                rule_id,
                getattr(where, "lineno", 0),
                getattr(where, "col_offset", 0),
                message,
            )
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    return findings
