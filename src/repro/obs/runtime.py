"""Process-global observation state for CLI-driven experiment runs.

Experiment cells are plain functions that build their own
:class:`~repro.core.system.System` internally — there is no parameter path
from the CLI down to ``build_system``.  This module provides the bridge:
:func:`activate` installs an :class:`Observation` for the duration of a
run, and ``build_system`` calls :func:`observe_system` on every machine it
finishes building.  With no observation active (the default, and always the
case in parallel workers), :func:`observe_system` is a single ``is None``
check.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, system_metrics
from repro.obs.trace import TraceSink


class Observation:
    """One run's worth of observability state: a sink plus metric registries."""

    def __init__(
        self,
        trace: Optional[TraceSink] = None,
        metrics: bool = False,
        sanitize: bool = False,
        on_system: Optional[Any] = None,
    ):
        #: Sink receiving spans/instants from every simulator built while
        #: this observation is active; ``None`` disables span tracing.
        self.trace = trace
        #: Optional ``callback(unit_label, system)`` invoked for every
        #: system built under this observation — the hook the perf harness
        #: uses to reach each cell's simulator (event counts) without
        #: paying for tracing or metrics collection.
        self.on_system = on_system
        #: When true, keep a reference to every built system's registry so
        #: the CLI can dump metrics after the run.
        self.collect_metrics = metrics
        #: When true (the default), the engine skips cache *reads* for
        #: observed runs — a cached payload would emit no spans/metrics.
        #: Checkpoint instrumentation sets this false: it only needs the
        #: ``on_system`` hook, and a cache hit is still a valid (and
        #: desirable, for ``--resume``) outcome.
        self.bypass_cache = True
        #: When true, attach a fresh
        #: :class:`repro.check.sanitizer.SimSanitizer` to every built
        #: system and keep it for post-run hazard reporting.
        self.sanitize = sanitize
        #: ``(unit_label, registry)`` per observed system, in build order.
        self.registries: List[Tuple[str, MetricsRegistry]] = []
        #: ``(unit_label, sanitizer)`` per observed system, in build order.
        self.sanitizers: List[Tuple[str, Any]] = []
        self._unit: Optional[str] = None
        self._unit_serial = 0

    def set_unit(self, label: Optional[str]) -> None:
        """Name the experiment cell the next built system(s) belong to."""
        self._unit = label

    def next_unit(self) -> str:
        label = self._unit if self._unit is not None else f"unit-{self._unit_serial}"
        self._unit_serial += 1
        return label


_active: Optional[Observation] = None


def activate(observation: Observation) -> None:
    """Install ``observation`` as the process-global one."""
    global _active
    if _active is not None:
        raise RuntimeError("an Observation is already active")
    _active = observation


def deactivate() -> None:
    global _active
    _active = None


def active() -> Optional[Observation]:
    return _active


def observe_system(system: Any) -> None:
    """Hook called by ``build_system`` on every freshly built machine.

    Attaches the active observation's trace sink to the system's simulator
    and registers the system's metrics; a no-op when nothing is active.
    """
    observation = _active
    if observation is None:
        return
    unit = observation.next_unit()
    if observation.trace is not None:
        observation.trace.attach(system.sim, unit)
    if observation.sanitize:
        # Imported lazily: repro.check is an optional dev-time layer and
        # the hot no-observation path must not pay for it.
        from repro.check.sanitizer import SimSanitizer

        sanitizer = SimSanitizer()
        sanitizer.attach(system)
        observation.sanitizers.append((unit, sanitizer))
    if observation.collect_metrics:
        # ``build_system`` attaches a registry to every machine; fall back
        # to building one for systems wired by hand.
        registry = system.metrics
        if registry is None:
            registry = system_metrics(system, label=unit)
        observation.registries.append((unit, registry))
    if observation.on_system is not None:
        observation.on_system(unit, system)
