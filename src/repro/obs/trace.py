"""Miss-lifecycle spans and the :class:`TraceSink` they flow into.

The paper's argument (Figs. 3, 11, 15) is about *where* a page miss spends
its time — exception walk vs. SQ submit vs. device service vs. PTE update.
This module gives every page miss a structured **span**: a begin time, an
end time, an outcome, and a list of typed events ``(time_ns, name,
duration_ns)`` recorded by the components the miss passes through.

Two paths share the vocabulary:

* **OS paths** (OSDP / SWDP / HWDP-fallback) — the span opens at fault
  entry; every ``ThreadContext.kernel_phase`` the handler charges lands in
  the span automatically (``exception_walk``, ``io_submit``,
  ``context_switch_*``, ``metadata_update``, ``return`` …), and the fault
  handler adds the events the phase stream cannot see (``device_service``,
  coalescing markers).
* **HWDP hardware path** — the SMU opens the span when the walker hands it
  the miss and records the pipeline segments of Figure 11(b):
  ``request_cam_lookup``, ``pmshr_allocate`` / ``pmshr_coalesced``,
  ``free_page_fetch``, ``sq_submit``, ``nvme_service``,
  ``completion_snoop``, ``page_table_update``, ``notify_broadcast``.

Components additionally emit **instant events** (PMSHR allocate/release,
SQ doorbells, CQ snoops, NVMe submit/complete, PTE installs, queue
refills) that render as their own Perfetto track.

Zero overhead when disabled: the sink hangs off
:attr:`repro.sim.engine.Simulator.trace`, which defaults to ``None``;
every emission site is guarded by one ``is None`` check and recording
never schedules events or advances simulated time, so a traced run is
byte-identical to an untraced one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.observe import SimObserver

#: One typed span event: ``(sim_time_ns, name, duration_ns)`` — the same
#: shape as :data:`repro.analysis.phases.PhaseEvent`, so span events feed
#: :func:`repro.analysis.phases.aggregate_phases` directly.
SpanEvent = Tuple[float, str, float]

#: Span outcomes.
COMPLETED = "completed"
COALESCED = "coalesced"
SPURIOUS = "spurious"
FAILED = "failed"

#: Span paths.
PATH_OSDP = "osdp"
PATH_SWDP = "swdp"
PATH_HWDP = "hwdp"
PATH_HWDP_FALLBACK = "hwdp-fallback"


class MissSpan:
    """The lifecycle of one page miss."""

    __slots__ = (
        "span_id",
        "unit",
        "path",
        "thread",
        "start_ns",
        "end_ns",
        "outcome",
        "pfn",
        "events",
        "attrs",
    )

    def __init__(self, span_id: int, unit: str, path: str, thread: str, start_ns: float):
        self.span_id = span_id
        #: Label of the simulation the span belongs to (one CLI run traces
        #: many independent experiment cells; each gets its own unit).
        self.unit = unit
        self.path = path
        self.thread = thread
        self.start_ns = start_ns
        self.end_ns: Optional[float] = None
        self.outcome: Optional[str] = None
        self.pfn: Optional[int] = None
        self.events: List[SpanEvent] = []
        self.attrs: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def event(self, time_ns: float, name: str, duration_ns: float = 0.0) -> None:
        """Record one typed event (a zero-duration mark or a timed segment)."""
        self.events.append((time_ns, name, duration_ns))

    @property
    def duration_ns(self) -> float:
        return (self.end_ns if self.end_ns is not None else self.start_ns) - self.start_ns

    @property
    def closed(self) -> bool:
        return self.end_ns is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the exporters build on this)."""
        return {
            "span_id": self.span_id,
            "unit": self.unit,
            "path": self.path,
            "thread": self.thread,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "outcome": self.outcome,
            "pfn": self.pfn,
            "events": [list(event) for event in self.events],
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.outcome}" if self.closed else "open"
        return f"<MissSpan #{self.span_id} {self.path} {state} events={len(self.events)}>"


class InstantEvent:
    """A point-in-time component event not tied to one span."""

    __slots__ = ("time_ns", "name", "unit", "args")

    def __init__(self, time_ns: float, name: str, unit: str, args: Dict[str, Any]):
        self.time_ns = time_ns
        self.name = name
        self.unit = unit
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_ns": self.time_ns,
            "name": self.name,
            "unit": self.unit,
            "args": dict(self.args),
        }


class TraceSink(SimObserver):
    """Collects miss spans and instant events from one or more simulations.

    One sink can observe several sequential simulations (the experiments
    CLI traces every cell of a run into one sink); :meth:`attach` switches
    the sink to a new simulator and labels the spans it produces.  Only
    recording methods are on the hot path and none of them touch the event
    queue — a sink observes, it never participates.
    """

    def __init__(self) -> None:
        self.spans: List[MissSpan] = []
        self.instants: List[InstantEvent] = []
        #: Unit labels in attach order (one per observed simulation).
        self.units: List[str] = []
        self._sim: Optional[Any] = None
        self._unit = "sim"
        self._next_span_id = 0
        self._open_spans = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, sim: Any, unit: Optional[str] = None) -> None:
        """Observe ``sim``; subsequent spans carry the ``unit`` label.

        Registration goes through the unified :meth:`Simulator.attach`
        observer door; :meth:`on_attach` does the engine-side wiring.
        """
        if unit is None:
            unit = f"sim-{len(self.units)}"
        self._unit = unit
        self.units.append(unit)
        sim.attach(self)

    def on_attach(self, sim: Any) -> None:
        """Publish the ``sim.trace`` side-channel model components emit
        through.  The sink defines no per-dispatch hook — recording is
        driven entirely by component emission sites, so attaching a sink
        leaves the engine's dispatch fast path untouched."""
        self._sim = sim
        sim.trace = self

    # ------------------------------------------------------------------
    # recording (the hot path)
    # ------------------------------------------------------------------
    def begin_span(self, thread_name: str, path: str, **attrs: Any) -> MissSpan:
        span = MissSpan(
            self._next_span_id, self._unit, path, thread_name, self._sim.now
        )
        self._next_span_id += 1
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        self._open_spans += 1
        return span

    def end_span(
        self,
        span: MissSpan,
        outcome: str = COMPLETED,
        pfn: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        span.end_ns = self._sim.now
        span.outcome = outcome
        span.pfn = pfn
        if attrs:
            span.attrs.update(attrs)
        self._open_spans -= 1

    def instant(self, name: str, **args: Any) -> None:
        self.instants.append(InstantEvent(self._sim.now, name, self._unit, args))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Spans begun but not ended — 0 after a clean run."""
        return self._open_spans

    def spans_by_path(self, path: str) -> List[MissSpan]:
        return [span for span in self.spans if span.path == path]

    def span_count(self, path: Optional[str] = None) -> int:
        if path is None:
            return len(self.spans)
        return len(self.spans_by_path(path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceSink units={len(self.units)} spans={len(self.spans)} "
            f"instants={len(self.instants)}>"
        )
