"""Exporters: Chrome-trace-event JSON (Perfetto-loadable) and breakdowns.

The Chrome trace event format (the JSON flavour Perfetto and
``chrome://tracing`` both load) renders each simulated unit (one
experiment cell) as a *process*, each simulated thread as a *track*, each
miss span as a complete (``ph: "X"``) slice with its typed events nested
beneath it, and component instants (``ph: "i"``) on a per-unit events
track.  Timestamps are microseconds in the format; the simulator's
nanoseconds are divided by 1000 (floats carry the sub-microsecond part).

:func:`span_breakdown` turns recorded spans into the measured Fig. 3 /
Fig. 11 per-phase analogue: because span events are ``(time, name,
duration)`` triples — the same shape as thread phase traces — the
aggregation *is* :func:`repro.analysis.phases.aggregate_phases`, so the
trace-derived breakdown is consistent with phase-trace analysis by
construction.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.phases import PhaseBreakdown, aggregate_phases
from repro.obs.trace import MissSpan, TraceSink

_NS_PER_US = 1000.0

#: Events-track tid used for instants within each unit.
_INSTANT_TID = 0


def chrome_trace(sink: TraceSink) -> Dict[str, Any]:
    """Render the sink's spans and instants as a Chrome trace-event dict."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def pid_of(unit: str) -> int:
        pid = pids.get(unit)
        if pid is None:
            pid = pids[unit] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": unit},
                }
            )
        return pid

    def tid_of(unit: str, thread: str) -> int:
        pid = pid_of(unit)
        key = (unit, thread)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = sum(1 for u, _ in tids if u == unit) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        return tid

    for span in sink.spans:
        pid = pid_of(span.unit)
        tid = tid_of(span.unit, span.thread)
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "outcome": span.outcome,
            "pfn": span.pfn,
        }
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "name": f"miss:{span.path}",
                "cat": span.path,
                "ts": span.start_ns / _NS_PER_US,
                "dur": span.duration_ns / _NS_PER_US,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for time_ns, name, duration_ns in span.events:
            events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": span.path,
                    "ts": time_ns / _NS_PER_US,
                    "dur": duration_ns / _NS_PER_US,
                    "pid": pid,
                    "tid": tid,
                    "args": {"span_id": span.span_id},
                }
            )

    for instant in sink.instants:
        events.append(
            {
                "ph": "i",
                "name": instant.name,
                "cat": "component",
                "ts": instant.time_ns / _NS_PER_US,
                "pid": pid_of(instant.unit),
                "tid": _INSTANT_TID,
                "s": "t",
                "args": dict(instant.args),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "units": list(sink.units),
            "span_count": len(sink.spans),
            "instant_count": len(sink.instants),
        },
    }


def write_chrome_trace(sink: TraceSink, path: str) -> Dict[str, Any]:
    """Write the Perfetto-loadable JSON to ``path``; returns the dict."""
    data = chrome_trace(sink)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1)
        handle.write("\n")
    return data


# ----------------------------------------------------------------------
# run-journal timelines (host-side supervision events)
# ----------------------------------------------------------------------
def run_timeline(state: Any) -> Dict[str, Any]:
    """Render a replayed run journal (:class:`repro.experiments.journal.RunState`)
    as a Chrome trace: one track per worker, one slice per cell attempt
    (``dispatched`` → ``done``/``failed``/``timeout``), one instant per
    supervision note (worker deaths, pool rebuilds, signals, resumes).

    This is the *host* timeline — wall-clock seconds since the run header,
    scaled to trace microseconds — and deliberately lives in a separate
    file from the simulated-time miss traces: the two time bases must
    never share an export.
    """
    origin = state.started_ts or 0.0
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"run {state.run_id}"},
        }
    ]
    tids: Dict[str, int] = {}

    def tid_of(worker: str) -> int:
        tid = tids.get(worker)
        if tid is None:
            tid = tids[worker] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": worker},
                }
            )
        return tid

    def rel_us(ts: Any) -> float:
        return (float(ts) - origin) * 1e6 if isinstance(ts, (int, float)) else 0.0

    open_attempts: Dict[tuple, Dict[str, Any]] = {}
    for record in state.records:
        kind = record.get("t")
        if kind == "cell":
            slot = (record.get("experiment"), record.get("key"), record.get("attempt"))
            if record.get("state") == "dispatched":
                open_attempts[slot] = record
            elif slot in open_attempts:
                start = open_attempts.pop(slot)
                ts = rel_us(start.get("ts"))
                events.append(
                    {
                        "ph": "X",
                        "name": f"{record.get('experiment')}#{str(record.get('key'))[:8]}",
                        "cat": record.get("state"),
                        "ts": ts,
                        "dur": max(0.0, rel_us(record.get("ts")) - ts),
                        "pid": 1,
                        "tid": tid_of(start.get("worker", "w?")),
                        "args": {
                            "state": record.get("state"),
                            "attempt": record.get("attempt"),
                            "error": record.get("error"),
                        },
                    }
                )
        elif kind == "note":
            events.append(
                {
                    "ph": "i",
                    "name": record.get("name", "note"),
                    "cat": "supervision",
                    "ts": rel_us(record.get("ts")),
                    "pid": 1,
                    "tid": _INSTANT_TID,
                    "s": "t",
                    "args": {
                        k: v
                        for k, v in record.items()
                        if k not in ("t", "ts", "name")
                    },
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.experiments.journal",
            "run_id": state.run_id,
            "attempts_open_at_export": len(open_attempts),
        },
    }


def write_run_timeline(state: Any, path: str) -> Dict[str, Any]:
    """Write a run journal's host timeline as Chrome-trace JSON."""
    data = run_timeline(state)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1)
        handle.write("\n")
    return data


# ----------------------------------------------------------------------
# schema validation (tests and the CI smoke step use this)
# ----------------------------------------------------------------------
_PHASES = {"X", "i", "M", "B", "E"}


def validate_chrome_trace(data: Any) -> List[str]:
    """Validate the exported dict against the trace-event format.

    Returns a list of problems — empty means the trace is well-formed
    (top-level object with a ``traceEvents`` list; every event has a
    ``ph``/``name``/``pid``/``tid``; timed events carry numeric ``ts`` and
    ``X`` events a non-negative ``dur``).
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field}")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: missing numeric ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
    return problems


# ----------------------------------------------------------------------
# measured latency breakdowns (the Fig. 3 / Fig. 11 analogue)
# ----------------------------------------------------------------------
def span_breakdown(
    spans: Iterable[MissSpan], path: Optional[str] = None
) -> PhaseBreakdown:
    """Aggregate span events into a per-phase breakdown.

    Filters to one lifecycle ``path`` when given; zero-duration marker
    events contribute counts but no time.
    """
    events = []
    for span in spans:
        if path is not None and span.path != path:
            continue
        events.extend(span.events)
    return aggregate_phases(events)


def breakdown_report(sink: TraceSink) -> str:
    """Per-path latency-breakdown text report for every recorded path."""
    lines: List[str] = []
    paths = sorted({span.path for span in sink.spans})
    for span_path in paths:
        spans = sink.spans_by_path(span_path)
        closed = [span for span in spans if span.closed]
        breakdown = span_breakdown(spans)
        lines.append(
            breakdown.to_text(
                f"{span_path}: {len(spans)} spans, "
                f"mean {sum(s.duration_ns for s in closed) / len(closed):,.0f} ns"
                if closed
                else f"{span_path}: {len(spans)} spans"
            )
        )
        lines.append("")
    if not paths:
        lines.append("(no spans recorded)")
    return "\n".join(lines).rstrip()
