"""Unified metrics registry: one namespace over every component's counters.

The simulator's components each keep their own tallies — the kernel's
:class:`~repro.sim.trace.Counter`, the PMSHR's ``stats`` bag, the NVMe
device's totals, the SMU's attribute counters.  Reading a run used to mean
knowing where each bag lives.  A :class:`MetricsRegistry` supersedes that
scatter as the *query surface*: every source registers under a dotted name
(``kernel.fault.major``, ``smu0.pmshr.coalesced``, ``device.reads``) and
:meth:`collect` snapshots them all into one flat, JSON-ready dict.

Sources keep their bags — update paths are untouched, so registering a
system for metrics perturbs nothing — and lazily evaluate at collect time,
so the registry costs nothing during the run.

:func:`system_metrics` wires a registry for a fully built
:class:`repro.core.system.System`; the system builder attaches one to every
system as ``system.metrics``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple


class MetricsRegistry:
    """Named, lazily-evaluated metric sources with one flat collect()."""

    def __init__(self, label: str = "system"):
        self.label = label
        #: (prefix, callable returning a flat dict of leaf values).
        self._sources: List[Tuple[str, Callable[[], Dict[str, Any]]]] = []
        self._names = set()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _claim(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"metric source {name!r} registered twice")
        self._names.add(name)

    def register_counter(self, name: str, counter: Any) -> None:
        """A :class:`repro.sim.trace.Counter`; leaves are its tallies."""
        self._claim(name)
        self._sources.append((name, counter.as_dict))

    def register_stat(self, name: str, stat: Any) -> None:
        """A :class:`repro.sim.trace.StatAccumulator`; leaves are its
        summary fields (count/mean/min/max/stddev and percentiles when
        samples were retained)."""
        self._claim(name)
        self._sources.append((name, stat.summary))

    def register_gauge(self, name: str, read: Callable[[], Any]) -> None:
        """A single scalar read at collect time."""
        self._claim(name)
        self._sources.append((name, lambda: {"": read()}))

    def register_values(self, name: str, read: Callable[[], Dict[str, Any]]) -> None:
        """A callable producing a flat dict of leaves at collect time."""
        self._claim(name)
        self._sources.append((name, read))

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, Any]:
        """Snapshot every source into one flat ``dotted.name -> value`` map."""
        snapshot: Dict[str, Any] = {}
        for prefix, read in self._sources:
            for leaf, value in read().items():
                snapshot[f"{prefix}.{leaf}" if leaf else prefix] = value
        return snapshot

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(
            {"label": self.label, "metrics": self.collect()},
            indent=indent,
            sort_keys=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {self.label!r} sources={len(self._sources)}>"


# ----------------------------------------------------------------------
# wiring for a built System
# ----------------------------------------------------------------------
def system_metrics(system: Any, label: str = "system") -> MetricsRegistry:
    """Build the unified registry for one simulated machine.

    Covers the kernel counter bag, per-SMU pipeline counters and PMSHR
    stats, the SMU host controller, free-page queues, the NVMe device, the
    block-I/O stack, and the simulation engine itself.
    """
    registry = MetricsRegistry(label)
    registry.register_counter("kernel", system.kernel.counters)
    registry.register_gauge("sim.events_dispatched", lambda: system.sim.events_dispatched)
    registry.register_gauge("sim.now_ns", lambda: system.sim.now)

    device = system.device
    registry.register_values(
        "device",
        lambda: {
            "reads_completed": device.reads_completed,
            "writes_completed": device.writes_completed,
            "read_errors": device.read_errors,
            "write_errors": device.write_errors,
            "timeouts": device.timeouts,
        },
    )
    registry.register_stat("device.read_time_ns", device.read_device_time)
    registry.register_stat("device.write_time_ns", device.write_device_time)

    blockio = system.kernel.blockio
    registry.register_values(
        "blockio",
        lambda: {
            "reads_submitted": blockio.reads_submitted,
            "writes_submitted": blockio.writes_submitted,
            "read_errors": blockio.read_errors,
            "write_errors": blockio.write_errors,
        },
    )

    for queue_index, queue in enumerate(system.kernel.iter_free_queues()):
        registry.register_counter(f"free_queue{queue_index}", queue.stats)
        registry.register_gauge(
            f"free_queue{queue_index}.occupancy", lambda q=queue: q.occupancy
        )

    smus = system.smu_complex.smus if system.smu_complex is not None else []
    for smu in smus:
        prefix = f"smu{smu.socket_id}"
        registry.register_values(
            prefix,
            lambda s=smu: {
                "misses_handled": s.misses_handled,
                "misses_failed": s.misses_failed,
                "anon_zero_fills": s.anon_zero_fills,
                "io_timeouts": s.io_timeouts,
                "io_errors": s.io_errors,
                "io_error_failures": s.io_error_failures,
            },
        )
        registry.register_counter(f"{prefix}.pmshr", smu.pmshr.stats)
        registry.register_gauge(
            f"{prefix}.pmshr.outstanding", lambda s=smu: s.pmshr.outstanding
        )
        registry.register_values(
            f"{prefix}.host",
            lambda s=smu: {
                "commands_issued": s.host.commands_issued,
                "completions_snooped": s.host.completions_snooped,
                "sq_backpressure_waits": s.host.sq_backpressure_waits,
            },
        )
        registry.register_stat(f"{prefix}.before_device_ns", smu.before_device_stat)
        registry.register_stat(f"{prefix}.after_device_ns", smu.after_device_stat)

    sw_pmshr = system.kernel.fault_handler.sw_pmshr
    if sw_pmshr is not None:
        registry.register_counter("swdp.pmshr", sw_pmshr.stats)
    return registry


# ----------------------------------------------------------------------
# wiring for one experiment run (host-side supervision, not a simulator)
# ----------------------------------------------------------------------
def run_metrics(supervision: Dict[str, int], cache: Any = None) -> MetricsRegistry:
    """The run-level registry: supervision tallies plus cell-cache health.

    Covers the engine's supervisor counters (``supervision.retries``,
    ``supervision.timeouts``, ``supervision.worker_deaths``,
    ``supervision.pool_rebuilds``, …) and — when a cache is in play — its
    hit/miss/write tallies including ``cache.corrupt``, the count of
    quarantined entries.  These are host-side execution metrics: they never
    touch, and are never touched by, simulated time.
    """
    registry = MetricsRegistry("run")
    registry.register_values("supervision", lambda: dict(supervision))
    if cache is not None:
        registry.register_counter("cache", cache.stats)
    return registry
