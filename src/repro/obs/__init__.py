"""``repro.obs`` — simulator-wide structured tracing and unified metrics.

Public surface:

* :class:`~repro.obs.trace.TraceSink` / :class:`~repro.obs.trace.MissSpan`
  — miss-lifecycle spans with typed events on both the OS and the HWDP
  hardware paths; zero overhead when no sink is attached.
* :class:`~repro.obs.metrics.MetricsRegistry` /
  :func:`~repro.obs.metrics.system_metrics` — one dotted-name query
  surface over every component's counters.
* :func:`~repro.obs.export.chrome_trace` and friends — Perfetto-loadable
  Chrome-trace-event JSON plus measured per-span latency breakdowns.
* :mod:`~repro.obs.runtime` — process-global activation used by the
  experiments CLI (``--trace`` / ``--metrics``).
"""

from repro.obs.export import (
    breakdown_report,
    chrome_trace,
    span_breakdown,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry, system_metrics
from repro.obs.trace import (
    COALESCED,
    COMPLETED,
    FAILED,
    PATH_HWDP,
    PATH_HWDP_FALLBACK,
    PATH_OSDP,
    PATH_SWDP,
    SPURIOUS,
    InstantEvent,
    MissSpan,
    TraceSink,
)

__all__ = [
    "TraceSink",
    "MissSpan",
    "InstantEvent",
    "MetricsRegistry",
    "system_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "span_breakdown",
    "breakdown_report",
    "COMPLETED",
    "COALESCED",
    "SPURIOUS",
    "FAILED",
    "PATH_OSDP",
    "PATH_SWDP",
    "PATH_HWDP",
    "PATH_HWDP_FALLBACK",
]
