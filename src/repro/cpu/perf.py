"""Per-thread performance counters (the model's PMU).

Mirrors what the paper measures with the hardware PMU: user/kernel retired
instructions and cycles, user-level miss events, page-fault counts and
latencies by handling kind (Figures 4, 12, 14, 15).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.sim import StatAccumulator


class PerfCounters:
    """Counters accumulated by one thread (attributable to one context)."""

    def __init__(self, name: str = "thread"):
        self.name = name
        self.user_instructions = 0.0
        self.user_cycles = 0.0
        self.kernel_instructions = 0.0
        self.kernel_cycles = 0.0
        #: Cycles the pipeline spent stalled on hardware page misses.
        self.stall_cycles = 0.0
        #: Cycles spent context-switched out waiting for I/O.
        self.blocked_cycles = 0.0
        #: User-level miss events by kind (l1d_miss, llc_miss, ...).
        self.miss_events: Dict[str, float] = defaultdict(float)
        #: Page-miss counts by handling kind (TranslationKind.value).
        self.translations: Dict[str, int] = defaultdict(int)
        #: Miss-handling latency by handling kind.
        self.miss_latency: Dict[str, StatAccumulator] = {}
        #: Completed workload operations (driver-defined unit).
        self.operations = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter (start of a measurement window).

        Experiments call this after setup (mmap population, pre-warm) so
        control-path costs do not contaminate steady-state measurements —
        the paper likewise measures after its one-time 64 GB mmap.
        """
        self.__init__(self.name)

    # ------------------------------------------------------------------
    def record_translation(self, kind: str, latency_ns: float = 0.0) -> None:
        self.translations[kind] += 1
        if latency_ns > 0.0:
            stat = self.miss_latency.get(kind)
            if stat is None:
                stat = self.miss_latency[kind] = StatAccumulator(f"{self.name}:{kind}")
            stat.add(latency_ns)

    # ------------------------------------------------------------------
    @property
    def user_ipc(self) -> float:
        """User IPC over *user* cycles only — what the paper's PMU reports."""
        return self.user_instructions / self.user_cycles if self.user_cycles else 0.0

    @property
    def total_instructions(self) -> float:
        return self.user_instructions + self.kernel_instructions

    @property
    def total_cycles(self) -> float:
        return (
            self.user_cycles + self.kernel_cycles + self.stall_cycles + self.blocked_cycles
        )

    def misses_per_kinstr(self, event: str) -> float:
        if not self.user_instructions:
            return 0.0
        return self.miss_events[event] / (self.user_instructions / 1000.0)

    # ------------------------------------------------------------------
    def merge(self, other: "PerfCounters") -> None:
        """Fold ``other`` into this one (aggregate across threads)."""
        self.user_instructions += other.user_instructions
        self.user_cycles += other.user_cycles
        self.kernel_instructions += other.kernel_instructions
        self.kernel_cycles += other.kernel_cycles
        self.stall_cycles += other.stall_cycles
        self.blocked_cycles += other.blocked_cycles
        self.operations += other.operations
        for event, count in other.miss_events.items():
            self.miss_events[event] += count
        for kind, count in other.translations.items():
            self.translations[kind] += count
        for kind, stat in other.miss_latency.items():
            mine = self.miss_latency.get(kind)
            if mine is None:
                mine = self.miss_latency[kind] = StatAccumulator(f"merged:{kind}")
            mine.extend(stat.samples)


def aggregate(counters) -> PerfCounters:
    """Merge an iterable of :class:`PerfCounters` into a fresh one."""
    total = PerfCounters("aggregate")
    for counter in counters:
        total.merge(counter)
    return total
