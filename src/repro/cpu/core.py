"""Physical and logical cores with SMT issue-slot sharing.

The model's SMT rule (used for the paper's Figure 16 experiment):

* a logical core actively *issuing* (user or kernel execution) halves — more
  precisely, multiplies by ``smt_share_factor`` — its sibling's throughput;
* a logical core whose pipeline is **stalled** on a hardware page miss
  (HWDP behaviour, §VI-C "Polling vs. Context Switching") occupies the
  thread context but issues nothing, so the sibling runs at full speed;
* an **idle** logical core (its thread context-switched out waiting for
  I/O, the OSDP behaviour) likewise gives the sibling full speed — but in
  OSDP the fault path itself executes kernel instructions on the core
  first, which both consumes issue slots and pollutes the shared caches.

Pollution state lives on the *physical* core because L1/L2 and the branch
predictor are shared between hyperthreads.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional

from repro.config import CpuConfig
from repro.cpu.pollution import PollutionState
from repro.errors import ConfigError
from repro.sim import Simulator
from repro.vm.mmu import Mmu


class CoreState(enum.Enum):
    IDLE = "idle"  # no thread issuing (parked, or context-switched out)
    USER = "user"  # issuing user instructions
    KERNEL = "kernel"  # issuing kernel instructions
    STALLED = "stalled"  # pipeline stalled on a hardware page miss


class LogicalCore:
    """One hardware thread: MMU + issue state + bound software thread."""

    def __init__(self, sim: Simulator, physical: "PhysicalCore", lane: int):
        self.sim = sim
        self.physical = physical
        self.lane = lane
        self.core_id = physical.core_id * physical.config.smt_ways + lane
        self.mmu = Mmu(sim, self.core_id)
        self.state = CoreState.IDLE
        self.bound_thread: Optional[Any] = None
        self._smt_share = physical.config.smt_share_factor
        #: Sibling lanes, cached on first :meth:`smt_factor` call (the
        #: physical core is still appending lanes while we construct).
        self._siblings: Optional[tuple] = None

    # ------------------------------------------------------------------
    def bind(self, thread: Any) -> None:
        """Pin a software thread to this logical core (1:1 in this model)."""
        if self.bound_thread is not None:
            raise ConfigError(
                f"logical core {self.core_id} already runs thread "
                f"{self.bound_thread.name!r}; the model pins one thread per "
                "logical core (as the paper's experiments do)"
            )
        self.bound_thread = thread

    @property
    def issuing(self) -> bool:
        return self.state in (CoreState.USER, CoreState.KERNEL)

    def smt_factor(self) -> float:
        """Throughput multiplier from SMT contention, for this logical core."""
        siblings = self._siblings
        if siblings is None:
            siblings = self._siblings = tuple(
                lane for lane in self.physical.lanes if lane is not self
            )
        for lane in siblings:
            state = lane.state
            if state is CoreState.USER or state is CoreState.KERNEL:
                return self._smt_share
        return 1.0

    @property
    def pollution(self) -> PollutionState:
        return self.physical.pollution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogicalCore {self.core_id} {self.state.value}>"


class PhysicalCore:
    """One physical core: SMT lanes + shared pollution state."""

    def __init__(self, sim: Simulator, config: CpuConfig, core_id: int):
        self.sim = sim
        self.config = config
        self.core_id = core_id
        self.pollution = PollutionState(config)
        self.lanes: List[LogicalCore] = [
            LogicalCore(sim, self, lane) for lane in range(config.smt_ways)
        ]


class CpuComplex:
    """All cores of the socket."""

    def __init__(self, sim: Simulator, config: CpuConfig):
        self.sim = sim
        self.config = config
        self.physical_cores = [
            PhysicalCore(sim, config, core_id) for core_id in range(config.physical_cores)
        ]

    @property
    def logical_cores(self) -> List[LogicalCore]:
        return [lane for core in self.physical_cores for lane in core.lanes]

    def logical_core(self, index: int) -> LogicalCore:
        cores = self.logical_cores
        if not 0 <= index < len(cores):
            raise ConfigError(f"logical core index {index} out of range")
        return cores[index]

    def tlb_shootdown(self, vpn: int) -> int:
        """Invalidate a translation everywhere; returns cores that had it."""
        return sum(1 for lane in self.logical_cores if lane.mmu.invalidate(vpn))
