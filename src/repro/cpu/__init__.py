"""CPU substrate: cores, SMT, pollution model, perf counters, threads."""

from repro.cpu.core import CoreState, CpuComplex, LogicalCore, PhysicalCore
from repro.cpu.perf import PerfCounters, aggregate
from repro.cpu.pollution import PollutionState
from repro.cpu.thread import COMPUTE_QUANTUM, ThreadContext

__all__ = [
    "CoreState",
    "LogicalCore",
    "PhysicalCore",
    "CpuComplex",
    "PollutionState",
    "PerfCounters",
    "aggregate",
    "ThreadContext",
    "COMPUTE_QUANTUM",
]
