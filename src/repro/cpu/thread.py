"""Software thread contexts and their execution primitives.

A :class:`ThreadContext` is what workload drivers program against.  Its
methods are simulation coroutines:

``compute(instructions)``
    Execute user instructions.  Effective IPC = base IPC × pollution factor
    × SMT share; miss events accrue and pollution decays as the user code
    re-warms its state.
``mem_access(vaddr, is_write)``
    Issue one memory access through the logical core's MMU.  On a hardware
    page miss the pipeline *stalls* (no issue slots consumed); on an OS
    fault the handler's kernel phases and I/O blocking run inside this
    thread (see :mod:`repro.os.fault`).
``kernel_phase(ns, name)``
    Used by the OS model to charge one fault-path phase to this thread:
    occupies the core in KERNEL state, retires kernel instructions, and
    pollutes the physical core's microarchitectural state.
``block(completion)``
    Context-switched out: the core goes IDLE (an SMT sibling gets full
    width) until the completion fires.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import CpuConfig
from repro.cpu.core import CoreState, LogicalCore
from repro.cpu.perf import PerfCounters
from repro.errors import SimulationError
from repro.sim import Delay, Signal, Simulator, WaitSignal

#: Instruction-batch quantum: small enough that SMT/pollution state is
#: sampled every few microseconds, large enough to keep event counts low.
COMPUTE_QUANTUM = 20_000


class ThreadContext:
    """One software thread pinned to one logical core."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        process: Any,
        core: LogicalCore,
        cpu: CpuConfig,
        kernel_context: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.process = process
        self.core = core
        self.cpu = cpu
        #: Kernel daemons (kpted/kpoold) charge all work as kernel time.
        self.kernel_context = kernel_context
        self.perf = PerfCounters(name)
        #: Workload-specific IPC multiplier (SPEC-like kernels differ in
        #: inherent ILP; see :mod:`repro.workloads.spec`).
        self.ipc_scale = 1.0
        #: When set (a list), every kernel phase appends
        #: ``(sim_time_ns, phase_name, duration_ns)`` — the raw material
        #: for measured fault-path breakdowns (see repro.analysis.phases).
        self.phase_trace = None
        #: Open miss-lifecycle span this thread is currently inside (see
        #: :mod:`repro.obs.trace`); kernel phases charged while it is set
        #: land in the span as typed events.
        self.active_span = None
        core.bind(self)
        self.finished = False

    # ------------------------------------------------------------------
    # user execution
    # ------------------------------------------------------------------
    def compute(self, instructions: float) -> Generator[Any, Any, None]:
        """Retire ``instructions`` user instructions on this core."""
        if instructions < 0:
            raise SimulationError(f"negative instruction count {instructions}")
        remaining = float(instructions)
        while remaining > 0:
            chunk = min(remaining, COMPUTE_QUANTUM)
            pollution = self.core.pollution
            ipc = (
                self.cpu.base_user_ipc
                * self.ipc_scale
                * pollution.ipc_factor()
                * self.core.smt_factor()
            )
            cycles = chunk / ipc
            self.core.state = CoreState.USER
            yield Delay(self.cpu.cycles_to_ns(cycles))
            self.perf.user_instructions += chunk
            self.perf.user_cycles += cycles
            kilo = chunk / 1000.0
            for event in self.cpu.miss_rates_per_kinstr:
                self.perf.miss_events[event] += kilo * pollution.miss_rate(event)
            pollution.decay(chunk)
            remaining -= chunk
        self.core.state = CoreState.IDLE

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------
    def mem_access(self, vaddr: int, is_write: bool = False) -> Generator[Any, Any, Any]:
        """One load/store; returns the MMU's :class:`Translation`."""
        previous_state = self.core.state
        # While the walker/SMU works, the pipeline is stalled, not issuing.
        self.core.state = CoreState.STALLED
        translation = yield from self.core.mmu.translate(self, vaddr, is_write)
        self.core.state = previous_state
        self.perf.record_translation(translation.kind.value, translation.miss_latency_ns)
        kernel = getattr(self.process, "kernel", None)
        if kernel is not None:
            # Models the hardware access/dirty bits the OS samples: walks
            # (TLB misses) refresh LRU recency, writes mark pages dirty.
            kernel.note_access(translation.pfn, is_write)
        return translation

    # ------------------------------------------------------------------
    # kernel-side charging (called by the OS model on this thread)
    # ------------------------------------------------------------------
    def kernel_phase(self, ns: float, name: str = "") -> Generator[Any, Any, None]:
        """Run one kernel phase of ``ns`` length in this thread's context."""
        if ns <= 0:
            return
        if self.phase_trace is not None:
            self.phase_trace.append((self.sim.now, name, ns))
        if self.active_span is not None:
            self.active_span.event(self.sim.now, name, ns)
        self.core.state = CoreState.KERNEL
        yield Delay(ns)
        instructions = self.cpu.kernel_ns_to_instructions(ns)
        self.perf.kernel_instructions += instructions
        self.perf.kernel_cycles += self.cpu.ns_to_cycles(ns)
        self.core.pollution.add_kernel_work(instructions)
        self.core.state = CoreState.STALLED

    def block(self, signal: Signal) -> Generator[Any, Any, Any]:
        """Context-switched out until ``signal`` fires; core goes IDLE."""
        self.core.state = CoreState.IDLE
        blocked_at = self.sim.now
        value = yield WaitSignal(signal)
        self.perf.blocked_cycles += self.cpu.ns_to_cycles(self.sim.now - blocked_at)
        self.core.state = CoreState.STALLED
        return value

    def mwait(self, signal: Signal) -> Generator[Any, Any, Any]:
        """monitor/mwait-style wait: the core halts (STALLED, not issuing)
        until the watched memory is written — the SW-emulated SMU's
        completion wait (paper §VI-A)."""
        self.core.state = CoreState.STALLED
        waited_from = self.sim.now
        value = yield WaitSignal(signal)
        self.perf.stall_cycles += self.cpu.ns_to_cycles(self.sim.now - waited_from)
        self.core.state = CoreState.STALLED
        return value

    def stall(self, ns: float) -> Generator[Any, Any, None]:
        """Pipeline-stalled delay (hardware miss handling wait)."""
        if ns <= 0:
            return
        self.core.state = CoreState.STALLED
        yield Delay(ns)
        self.perf.stall_cycles += self.cpu.ns_to_cycles(ns)

    # ------------------------------------------------------------------
    def note_operation(self, count: int = 1) -> None:
        """Record completed workload operations (throughput accounting)."""
        self.perf.operations += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadContext {self.name} core={self.core.core_id}>"
