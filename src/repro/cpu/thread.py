"""Software thread contexts and their execution primitives.

A :class:`ThreadContext` is what workload drivers program against.  Its
methods are simulation coroutines:

``compute(instructions)``
    Execute user instructions.  Effective IPC = base IPC × pollution factor
    × SMT share; miss events accrue and pollution decays as the user code
    re-warms its state.
``mem_access(vaddr, is_write)``
    Issue one memory access through the logical core's MMU.  On a hardware
    page miss the pipeline *stalls* (no issue slots consumed); on an OS
    fault the handler's kernel phases and I/O blocking run inside this
    thread (see :mod:`repro.os.fault`).
``kernel_phase(ns, name)``
    Used by the OS model to charge one fault-path phase to this thread:
    occupies the core in KERNEL state, retires kernel instructions, and
    pollutes the physical core's microarchitectural state.
``block(completion)``
    Context-switched out: the core goes IDLE (an SMT sibling gets full
    width) until the completion fires.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import CpuConfig
from repro.cpu.core import CoreState, LogicalCore
from repro.cpu.perf import PerfCounters
from repro.errors import SimulationError
from repro.sim import Delay, Signal, Simulator, WaitSignal

#: Instruction-batch quantum: small enough that SMT/pollution state is
#: sampled every few microseconds, large enough to keep event counts low.
COMPUTE_QUANTUM = 20_000

#: Enum members bound as module locals: the execution primitives below set
#: core state once or twice per event, where the class-attribute chain
#: shows up in profiles.
_IDLE = CoreState.IDLE
_USER = CoreState.USER
_KERNEL = CoreState.KERNEL
_STALLED = CoreState.STALLED


class ThreadContext:
    """One software thread pinned to one logical core."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        process: Any,
        core: LogicalCore,
        cpu: CpuConfig,
        kernel_context: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.process = process
        self.core = core
        self.cpu = cpu
        #: Kernel daemons (kpted/kpoold) charge all work as kernel time.
        self.kernel_context = kernel_context
        self.perf = PerfCounters(name)
        #: Workload-specific IPC multiplier (SPEC-like kernels differ in
        #: inherent ILP; see :mod:`repro.workloads.spec`).
        self.ipc_scale = 1.0
        #: When set (a list), every kernel phase appends
        #: ``(sim_time_ns, phase_name, duration_ns)`` — the raw material
        #: for measured fault-path breakdowns (see repro.analysis.phases).
        self.phase_trace = None
        #: Open miss-lifecycle span this thread is currently inside (see
        #: :mod:`repro.obs.trace`); kernel phases charged while it is set
        #: land in the span as typed events.
        self.active_span = None
        core.bind(self)
        self.finished = False
        # -- hot-path caches (values are fixed for the thread's lifetime) --
        self._freq = cpu.freq_ghz
        self._kernel_ipc = cpu.kernel_ipc
        #: ``(event, base_rate, pollution_sensitivity)`` rows mirroring the
        #: config dicts, so the per-quantum miss-event loop needs no dict
        #: lookups (iteration order matches the config dict's).
        self._miss_tuples = tuple(
            (event, cpu.miss_rates_per_kinstr[event], cpu.miss_pollution_sensitivity[event])
            for event in cpu.miss_rates_per_kinstr
        )
        self._process_kernel = getattr(process, "kernel", None)
        #: Reusable Delay command.  The process layer copies ``ns`` out of
        #: a yielded Delay synchronously at the yield point, so a single
        #: mutable instance per thread is safe and saves an allocation per
        #: compute quantum / kernel phase.
        self._delay = Delay(0.0)

    # ------------------------------------------------------------------
    # user execution
    # ------------------------------------------------------------------
    def compute(self, instructions: float) -> Generator[Any, Any, None]:
        """Retire ``instructions`` user instructions on this core."""
        if instructions < 0:
            raise SimulationError(f"negative instruction count {instructions}")
        remaining = float(instructions)
        core = self.core
        pollution = core.pollution
        perf = self.perf
        miss_events = perf.miss_events
        miss_tuples = self._miss_tuples
        freq = self._freq
        penalty = pollution._ipc_penalty
        # ``base * scale`` is the constant prefix of the IPC product; the
        # association ``((base * scale) * pollution) * smt`` matches the
        # original left-to-right fold bit for bit.
        scaled_base_ipc = self.cpu.base_user_ipc * self.ipc_scale
        delay = self._delay
        while remaining > 0:
            chunk = min(remaining, COMPUTE_QUANTUM)
            ipc = scaled_base_ipc * (1.0 - penalty * pollution.value) * core.smt_factor()
            cycles = chunk / ipc
            core.state = _USER
            delay.ns = cycles / freq
            yield delay
            perf.user_instructions += chunk
            perf.user_cycles += cycles
            kilo = chunk / 1000.0
            value = pollution.value
            for event, base, sensitivity in miss_tuples:
                miss_events[event] += kilo * (base * (1.0 + sensitivity * value))
            pollution.decay(chunk)
            remaining -= chunk
        core.state = _IDLE

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------
    def mem_access(self, vaddr: int, is_write: bool = False) -> Generator[Any, Any, Any]:
        """One load/store; returns the MMU's :class:`Translation`."""
        core = self.core
        previous_state = core.state
        # While the walker/SMU works, the pipeline is stalled, not issuing.
        core.state = _STALLED
        translation = yield from core.mmu.translate(self, vaddr, is_write)
        core.state = previous_state
        self.perf.record_translation(translation.kind.value, translation.miss_latency_ns)
        kernel = self._process_kernel
        if kernel is not None:
            # Models the hardware access/dirty bits the OS samples: walks
            # (TLB misses) refresh LRU recency, writes mark pages dirty.
            kernel.note_access(translation.pfn, is_write)
        return translation

    # ------------------------------------------------------------------
    # kernel-side charging (called by the OS model on this thread)
    # ------------------------------------------------------------------
    def kernel_phase(self, ns: float, name: str = "") -> Generator[Any, Any, None]:
        """Run one kernel phase of ``ns`` length in this thread's context."""
        if ns <= 0:
            return
        if self.phase_trace is not None:
            self.phase_trace.append((self.sim.now, name, ns))
        if self.active_span is not None:
            self.active_span.event(self.sim.now, name, ns)
        core = self.core
        core.state = _KERNEL
        delay = self._delay
        delay.ns = ns
        yield delay
        cycles = ns * self._freq
        instructions = cycles * self._kernel_ipc
        perf = self.perf
        perf.kernel_instructions += instructions
        perf.kernel_cycles += cycles
        core.pollution.add_kernel_work(instructions)
        core.state = _STALLED

    def block(self, signal: Signal) -> Generator[Any, Any, Any]:
        """Context-switched out until ``signal`` fires; core goes IDLE."""
        self.core.state = _IDLE
        blocked_at = self.sim.now
        value = yield WaitSignal(signal)
        self.perf.blocked_cycles += (self.sim.now - blocked_at) * self._freq
        self.core.state = _STALLED
        return value

    def mwait(self, signal: Signal) -> Generator[Any, Any, Any]:
        """monitor/mwait-style wait: the core halts (STALLED, not issuing)
        until the watched memory is written — the SW-emulated SMU's
        completion wait (paper §VI-A)."""
        self.core.state = _STALLED
        waited_from = self.sim.now
        value = yield WaitSignal(signal)
        self.perf.stall_cycles += (self.sim.now - waited_from) * self._freq
        self.core.state = _STALLED
        return value

    def stall(self, ns: float) -> Generator[Any, Any, None]:
        """Pipeline-stalled delay (hardware miss handling wait)."""
        if ns <= 0:
            return
        self.core.state = _STALLED
        delay = self._delay
        delay.ns = ns
        yield delay
        self.perf.stall_cycles += ns * self._freq

    # ------------------------------------------------------------------
    def note_operation(self, count: int = 1) -> None:
        """Record completed workload operations (throughput accounting)."""
        self.perf.operations += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThreadContext {self.name} core={self.core.core_id}>"
