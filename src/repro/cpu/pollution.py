"""Microarchitectural-pollution model.

The paper's indirect cost of OS-based demand paging (§II-B, Figures 4/14):
frequent exceptions drag kernel code and data through the caches, TLBs and
branch predictor, lowering the *user-level* IPC and raising user-level miss
rates.  FlexSC [66] — which the paper cites for this effect — measured the
same phenomenon for system calls.

We model the effect with one scalar ``p ∈ [0, 1]`` per *physical* core
(L1/L2 and the branch predictor are shared by SMT siblings):

* executing ``k`` kernel instructions moves ``p`` toward 1 with rate
  ``1/pollution_saturation_instr``;
* executing ``u`` user instructions decays ``p`` exponentially with scale
  ``pollution_decay_instr``;
* user IPC is scaled by ``1 − pollution_ipc_penalty · p`` and user-level
  miss rates by ``1 + sensitivity · p``.

Constants are calibrated so a fault-per-few-ops OSDP run shows a user-IPC
deficit of roughly 7 % against HWDP, matching Figure 14.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.config import CpuConfig

_exp = math.exp


class PollutionState:
    """Pollution scalar for one physical core.

    The config constants are mirrored into instance floats at build time:
    :meth:`decay` and :meth:`add_kernel_work` run once per compute quantum
    / kernel phase, and the dataclass attribute chain costs real time at
    that frequency.
    """

    def __init__(self, config: CpuConfig):
        self.config = config
        self.value = 0.0
        self._saturation_instr = config.pollution_saturation_instr
        self._decay_instr = config.pollution_decay_instr
        self._ipc_penalty = config.pollution_ipc_penalty

    def add_kernel_work(self, instructions: float) -> None:
        """Kernel execution pushes pollution toward saturation."""
        if instructions <= 0:
            return
        gain = 1.0 - _exp(-instructions / self._saturation_instr)
        self.value += (1.0 - self.value) * gain

    def decay(self, user_instructions: float) -> None:
        """User execution gradually re-warms user state."""
        if user_instructions <= 0:
            return
        self.value *= _exp(-user_instructions / self._decay_instr)

    def ipc_factor(self) -> float:
        """Multiplier on user IPC under the current pollution."""
        return 1.0 - self._ipc_penalty * self.value

    def miss_rate(self, event: str) -> float:
        """User-level misses of ``event`` kind per kilo-instruction."""
        base = self.config.miss_rates_per_kinstr[event]
        sensitivity = self.config.miss_pollution_sensitivity[event]
        return base * (1.0 + sensitivity * self.value)

    def miss_rates(self) -> Dict[str, float]:
        return {event: self.miss_rate(event) for event in self.config.miss_rates_per_kinstr}
