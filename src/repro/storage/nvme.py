"""NVMe device, namespaces, and queue pairs.

The model follows the NVMe flow the paper relies on (§II-B, §III-C):

* the host writes a 64-byte command into a submission queue (SQ) in memory
  and rings the SQ doorbell (one PCIe register write);
* the device fetches, executes, then writes a completion entry into the
  completion queue (CQ) in memory;
* completion is signalled either by an interrupt (OS-managed queues) or by
  the SMU's completion unit snooping the CQ memory write (SMU queues have
  interrupts disabled, §III-C).

Both delivery styles map onto the queue pair's ``completion_signal``: the
kernel's interrupt path and the SMU's snooper both wait on it; the *costs*
they pay on wake-up differ and are charged by the respective consumers.

Device-internal concurrency is a ``parallel_ops``-server station; reads are
inflated while writes occupy slots (see :mod:`repro.storage.latency`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.config import BLOCKS_PER_PAGE, DeviceConfig
from repro.errors import StorageError
from repro.sim import Delay, FifoChannel, Server, Signal, Simulator, StatAccumulator, spawn
from repro.storage.latency import DeviceLatencyModel


class NVMeOpcode(enum.Enum):
    READ = "read"
    WRITE = "write"


class NVMeStatus(enum.Enum):
    """Completion status (the subset of NVMe status codes the model needs)."""

    SUCCESS = "success"
    #: Media error on a read (NVMe 02h/81h Unrecovered Read Error).
    UNRECOVERED_READ = "unrecovered-read"
    #: Media error on a write (NVMe 02h/80h Write Fault).
    WRITE_FAULT = "write-fault"
    #: The host's command timeout fired and the abort reaped the command.
    COMMAND_TIMEOUT = "command-timeout"


@dataclass
class Namespace:
    """A storage volume organised into logical blocks (one per file system)."""

    nsid: int
    capacity_blocks: int
    #: Next unallocated block, for the simple bump allocator used by the
    #: file-system model.
    _next_free_block: int = 0

    def allocate_blocks(self, count: int) -> int:
        """Allocate ``count`` contiguous blocks, returning the first LBA."""
        if self._next_free_block + count > self.capacity_blocks:
            raise StorageError(
                f"namespace {self.nsid}: out of blocks "
                f"({self._next_free_block}+{count} > {self.capacity_blocks})"
            )
        lba = self._next_free_block
        self._next_free_block += count
        return lba

    def allocate_page_blocks(self) -> int:
        """Allocate one page worth of blocks (8 × 512 B)."""
        return self.allocate_blocks(BLOCKS_PER_PAGE)

    def check_lba(self, lba: int, blocks: int) -> None:
        if not (0 <= lba and lba + blocks <= self.capacity_blocks):
            raise StorageError(f"namespace {self.nsid}: LBA {lba} out of range")


@dataclass
class NVMeCommand:
    """One 64-byte NVMe command (the subset the model needs)."""

    opcode: NVMeOpcode
    nsid: int
    lba: int
    blocks: int = BLOCKS_PER_PAGE
    #: Command identifier — the SMU tags it with the PMSHR entry index so
    #: completion can find the entry (§III-C).
    cid: int = 0
    #: Destination DMA address (the free page frame).
    dma_addr: int = 0
    submit_time_ns: float = 0.0
    complete_time_ns: float = 0.0
    #: Completion status stamped by the device (fault injection can make
    #: this a failure; consumers must check :attr:`ok`).
    status: NVMeStatus = NVMeStatus.SUCCESS
    #: Opaque submitter cookie carried through completion — the writeback
    #: path stores the backing :class:`repro.os.filesystem.File` here so
    #: the interrupt handler can latch write errors against it.
    context: Any = None

    @property
    def is_write(self) -> bool:
        return self.opcode is NVMeOpcode.WRITE

    @property
    def ok(self) -> bool:
        return self.status is NVMeStatus.SUCCESS

    @property
    def device_time_ns(self) -> float:
        return self.complete_time_ns - self.submit_time_ns


class QueuePair:
    """An SQ/CQ pair.

    ``interrupt_enabled`` distinguishes OS-managed queues from SMU queues;
    the model's delivery mechanism is the same signal — consumers pay their
    own costs (interrupt delivery vs. snoop) on wake-up.
    """

    def __init__(
        self,
        sim: Simulator,
        qid: int,
        depth: int = 1024,
        interrupt_enabled: bool = True,
        owner: str = "os",
    ):
        self.sim = sim
        self.qid = qid
        self.depth = depth
        self.interrupt_enabled = interrupt_enabled
        self.owner = owner
        self.outstanding = 0
        #: Slots claimed by issuers that have passed admission but not yet
        #: submitted (the SMU host controller's backpressure reservation).
        self.reserved = 0
        self.submitted = 0
        self.completed = 0
        #: Completed commands, in completion order.  A FIFO (rather than a
        #: broadcast signal) guarantees no completion is ever lost when two
        #: commands finish at the same instant; the consumer is the kernel's
        #: interrupt handler or the SMU's completion unit.
        self.cq = FifoChannel(sim, name=f"qp{qid}-cq")
        #: Fired whenever a command completes and its SQ slot frees up —
        #: submitters blocked on a full queue wait here (backpressure).
        self.slot_freed = Signal(sim, name=f"qp{qid}-slot-freed")

    @property
    def occupied(self) -> int:
        """Slots in use or spoken for (outstanding commands + reservations)."""
        return self.outstanding + self.reserved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueuePair {self.qid} owner={self.owner} outstanding={self.outstanding}>"


class NVMeDevice:
    """One NVMe device with namespaces, queue pairs, and a service station."""

    def __init__(self, sim: Simulator, config: DeviceConfig, rng, name: Optional[str] = None):
        self.sim = sim
        self.config = config
        self.name = name or config.name
        self.latency_model = DeviceLatencyModel(config, rng)
        self._server = Server(sim, capacity=config.parallel_ops, name=f"{self.name}-srv")
        self._cmd_name = f"{self.name}-cmd"
        self._parallel_ops = float(config.parallel_ops)
        self._writes_in_service = 0
        self._qid_counter = itertools.count(1)
        self.queue_pairs: Dict[int, QueuePair] = {}
        self.namespaces: Dict[int, Namespace] = {}
        #: Set by the system builder when the config carries a fault plan;
        #: ``None`` means every command completes successfully.
        self.fault_injector: Optional[Any] = None
        # -- statistics ---------------------------------------------------
        self.reads_completed = 0
        self.writes_completed = 0
        self.read_errors = 0
        self.write_errors = 0
        self.timeouts = 0
        self.read_device_time = StatAccumulator("read-device-time")
        self.write_device_time = StatAccumulator("write-device-time", keep_samples=False)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def create_namespace(self, capacity_blocks: int) -> Namespace:
        nsid = len(self.namespaces) + 1
        namespace = Namespace(nsid=nsid, capacity_blocks=capacity_blocks)
        self.namespaces[nsid] = namespace
        return namespace

    def create_queue_pair(
        self, depth: int = 1024, interrupt_enabled: bool = True, owner: str = "os"
    ) -> QueuePair:
        if len(self.queue_pairs) >= self.config.max_queue_pairs:
            raise StorageError(f"{self.name}: queue-pair limit reached")
        qid = next(self._qid_counter)
        qp = QueuePair(self.sim, qid, depth, interrupt_enabled, owner)
        self.queue_pairs[qid] = qp
        return qp

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def submit(self, qp: QueuePair, command: NVMeCommand) -> None:
        """Doorbell write arrived: device begins fetching the command.

        The *caller* charges its own submission costs (building the command,
        the doorbell write); this method starts device-side processing.
        """
        if qp.qid not in self.queue_pairs:
            raise StorageError(f"{self.name}: unknown queue pair {qp.qid}")
        if qp.outstanding >= qp.depth:
            raise StorageError(f"{self.name}: queue {qp.qid} overflow")
        namespace = self.namespaces.get(command.nsid)
        if namespace is None:
            raise StorageError(f"{self.name}: unknown namespace {command.nsid}")
        namespace.check_lba(command.lba, command.blocks)
        qp.outstanding += 1
        qp.submitted += 1
        command.submit_time_ns = self.sim.now
        sink = self.sim.trace
        if sink is not None:
            sink.instant(
                "nvme.submit",
                device=self.name,
                qid=qp.qid,
                cid=command.cid,
                opcode=command.opcode.value,
                nsid=command.nsid,
                lba=command.lba,
            )
        spawn(self.sim, self._execute(qp, command), self._cmd_name)

    def _service_time(self, command: NVMeCommand) -> float:
        if command.opcode is NVMeOpcode.WRITE:
            self._writes_in_service += 1
            duration = self.latency_model.write_service_ns()
            self.sim.schedule(duration, self._write_done)
        else:
            occupancy = self._writes_in_service / self._parallel_ops
            duration = self.latency_model.read_service_ns(occupancy)
        return duration

    def _write_done(self) -> None:
        self._writes_in_service -= 1

    def _execute(self, qp: QueuePair, command: NVMeCommand):
        yield from self._server.service(lambda: self._service_time(command))
        if self.fault_injector is not None:
            decision = self.fault_injector.decide(self.name, command, self.sim.now)
            if decision is not None:
                if decision.extra_delay_ns > 0.0:
                    # A timed-out command holds its slot until the host's
                    # abort reaps it.
                    yield Delay(decision.extra_delay_ns)
                command.status = NVMeStatus[decision.status_name]
        command.complete_time_ns = self.sim.now
        qp.outstanding -= 1
        qp.completed += 1
        qp.slot_freed.fire(qp)
        status = command.status
        if status is not NVMeStatus.SUCCESS:
            # Failed commands are tallied separately and excluded from the
            # device-time statistics (they would skew the latency tables).
            if status is NVMeStatus.COMMAND_TIMEOUT:
                self.timeouts += 1
            elif command.opcode is NVMeOpcode.WRITE:
                self.write_errors += 1
            else:
                self.read_errors += 1
        elif command.opcode is NVMeOpcode.WRITE:
            self.writes_completed += 1
            self.write_device_time.add(command.complete_time_ns - command.submit_time_ns)
        else:
            self.reads_completed += 1
            self.read_device_time.add(command.complete_time_ns - command.submit_time_ns)
        sink = self.sim.trace
        if sink is not None:
            sink.instant(
                "nvme.complete",
                device=self.name,
                qid=qp.qid,
                cid=command.cid,
                status=command.status.value,
                device_time_ns=command.device_time_ns,
            )
        # CQ entry write: this is the memory transaction the SMU snoops and
        # the event the interrupt path is raised for.
        qp.cq.put_nowait(command)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._server.busy + self._server.queue_length

    def utilisation(self, elapsed_ns: float) -> float:
        return self._server.utilisation(elapsed_ns)
