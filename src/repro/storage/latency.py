"""Device service-time models.

The paper treats the *device time* (SQ doorbell write → CQ entry write) as a
measured constant per device: 10.9 µs for the Z-SSD, ~6.5 µs for the Optane
SSD and 2.1 µs for Optane DC PMM used as a block device (Figure 17).  The
model samples around those means with a small lognormal variation (ultra-low
latency devices are tight) and inflates reads while writes are in flight —
the read/write interference the paper invokes to explain YCSB's smaller
gains (§VI-C: "workloads show higher read I/O latency than read-only
workloads due to contention caused by writes in the SSD").
"""

from __future__ import annotations

import numpy as np

from repro.config import DeviceConfig


class DeviceLatencyModel:
    """Samples per-command service times for one device."""

    def __init__(self, config: DeviceConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        # Hot-path caches: one sample per NVMe command.
        self._sigma = config.latency_sigma
        self._read_ns = config.read_latency_ns
        self._write_ns = config.write_latency_ns
        self._interference = config.write_interference
        self._lognormal = rng.lognormal

    def _sample(self, mean_ns: float) -> float:
        sigma = self._sigma
        if sigma <= 0:
            return mean_ns
        # Lognormal with median = mean_ns; at the small sigmas used the
        # distribution mean is within 0.1 % of mean_ns.
        return float(mean_ns * self._lognormal(0.0, sigma))

    def read_service_ns(self, write_occupancy: float = 0.0) -> float:
        """Service time of one 4 KB read.

        ``write_occupancy`` is the fraction of device slots currently busy
        with writes; reads are inflated by ``write_interference`` times it.
        """
        inflation = 1.0 + self._interference * max(0.0, min(1.0, write_occupancy))
        return self._sample(self._read_ns) * inflation

    def write_service_ns(self) -> float:
        """Service time of one 4 KB write."""
        return self._sample(self._write_ns)
