"""Storage substrate: NVMe devices, namespaces, queue pairs, latency models."""

from repro.storage.latency import DeviceLatencyModel
from repro.storage.nvme import Namespace, NVMeCommand, NVMeDevice, NVMeOpcode, QueuePair

__all__ = [
    "DeviceLatencyModel",
    "NVMeDevice",
    "NVMeCommand",
    "NVMeOpcode",
    "Namespace",
    "QueuePair",
]
