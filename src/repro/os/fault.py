"""The page-fault handler: OSDP, SWDP-emulation, and HWDP-fallback paths.

This module is the *data plane of the baseline* and the heart of the
latency comparison:

**OSDP major fault** (Figures 3/10/11a) — exception → handler entry → frame
allocation → I/O-stack submission → context switch out (overlapped with the
device) → blocked → interrupt delivery → I/O-stack completion → context
switch in → OS metadata update → PTE update and return.  Every phase
charges kernel time to the faulting thread per :class:`repro.config.OsdpCosts`.

**SWDP fault** (§VI-A) — the exception is taken, an early LBA-bit check
jumps to the software SMU emulation: PMSHR-in-memory ops and direct NVMe
command construction on an isolated queue, then an mwait-style stall until
the CQ write, then PTE installation *without* inline metadata updates
(kpted synchronises later).  No block layer, no context switch.

**HWDP fallback** — when the SMU finds the free-page queue empty it raises
a normal exception; the OS handles the fault conventionally *and* refills
the queue, overlapping the refill with the device time as in AIOS (§IV-D).

Concurrent faults coalesce: the OS paths on an in-flight table (Linux
serialises on the page lock), the SWDP path in its emulated PMSHR exactly
like the hardware does.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.config import PagingMode
from repro.errors import IoError, SegmentationFault
from repro.mem.address import PAGE_SHIFT
from repro.obs import trace as obs
from repro.sim import Completion
from repro.vm.page_table import WalkResult
from repro.vm.pte import ANON_FIRST_TOUCH_LBA, PteStatus, decode_pte


class PageFaultHandler:
    """All exception-entered fault handling for one kernel."""

    def __init__(self, kernel: Any):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.config.osdp_costs
        self.sw_costs = kernel.config.swdp_costs
        #: (pid, vpn) → Completion firing with the installed PFN.
        self._inflight: Dict[Tuple[int, int], Completion] = {}
        #: Emulated PMSHR (SWDP mode only; lives in kernel memory).
        #: Imported lazily: repro.core's package init reaches back into
        #: repro.os, so a module-level import would be circular.
        self.sw_pmshr = None
        if kernel.config.mode is PagingMode.SWDP:
            from repro.core.pmshr import Pmshr

            self.sw_pmshr = Pmshr(self.sim, kernel.config.smu.pmshr_entries)

    # ------------------------------------------------------------------
    # entry point (installed as every MMU's fault handler)
    # ------------------------------------------------------------------
    def handle(
        self, thread: Any, vaddr: int, walk: WalkResult, is_write: bool
    ) -> Generator[Any, Any, int]:
        sink = self.sim.trace
        if sink is None:
            pfn = yield from self._dispatch(thread, vaddr, walk, is_write)
            return pfn
        # Open the miss span at fault entry; inner paths retag the path
        # (swdp / hwdp-fallback) and pre-set non-default outcomes, and every
        # kernel phase charged below lands in the span via active_span.
        span = sink.begin_span(
            thread.name,
            obs.PATH_OSDP,
            vaddr=f"{vaddr:#x}",
            pid=thread.process.pid,
            write=is_write,
        )
        previous_span = thread.active_span
        thread.active_span = span
        try:
            pfn = yield from self._dispatch(thread, vaddr, walk, is_write)
        except BaseException as exc:
            sink.end_span(span, obs.FAILED, error=type(exc).__name__)
            raise
        finally:
            thread.active_span = previous_span
        sink.end_span(span, span.outcome or obs.COMPLETED, pfn=pfn)
        return pfn

    # repro: hot-path
    def _dispatch(
        self, thread: Any, vaddr: int, walk: WalkResult, is_write: bool
    ) -> Generator[Any, Any, int]:
        kernel = self.kernel
        kernel.counters.add("fault.exceptions")
        yield from thread.kernel_phase(self.costs.exception_walk_ns, "exception_walk")

        process = thread.process
        vma = process.find_vma(vaddr)
        if vma is None:
            raise SegmentationFault(
                f"{process.name}/{thread.name}: no VMA maps {vaddr:#x}"
            )

        # Re-read the PTE: the page may have been installed while the
        # exception was delivered (e.g. the SMU completing a racing miss).
        current = decode_pte(process.page_table.get_pte(vaddr))
        if current.present:
            kernel.counters.add("fault.spurious")
            span = thread.active_span
            if span is not None:
                span.outcome = obs.SPURIOUS
            yield from thread.kernel_phase(self.costs.pte_update_return_ns, "return")
            return current.pfn

        if (
            self.sw_pmshr is not None
            and vma.is_fastmap
            and current.status is PteStatus.NON_RESIDENT_HW
        ):
            # Early LBA-bit check (§VI-A): jump to the SMU emulation, which
            # coalesces in the emulated PMSHR rather than the in-flight map.
            pfn = yield from self._swdp_fault(thread, vaddr, vma, current)
            return pfn

        refill = current.status is PteStatus.NON_RESIDENT_HW
        if refill:
            span = thread.active_span
            if span is not None:
                # The SMU bounced this miss to the OS (free queue empty).
                span.path = obs.PATH_HWDP_FALLBACK
        pfn = yield from self._coalesced_os_fault(thread, vaddr, vma, refill)
        return pfn

    # ------------------------------------------------------------------
    # page-lock style coalescing wrapper for the OS-handled paths
    # ------------------------------------------------------------------
    # repro: hot-path
    def _coalesced_os_fault(
        self, thread: Any, vaddr: int, vma: Any, refill_queue: bool
    ) -> Generator[Any, Any, int]:
        kernel = self.kernel
        key = (thread.process.pid, vaddr >> PAGE_SHIFT)
        pending = self._inflight.get(key)
        if pending is not None:
            # Another thread is already faulting this page in: sleep on the
            # page lock and return its frame.
            kernel.counters.add("fault.coalesced")
            span = thread.active_span
            if span is not None:
                span.outcome = obs.COALESCED
                waited_from = self.sim.now
            pfn = yield from thread.block(pending)
            if span is not None:
                span.event(waited_from, "page_lock_wait", self.sim.now - waited_from)
            if pfn is None:
                # The leader's I/O failed terminally; every sleeper on the
                # page lock gets the same SIGBUS.
                kernel.counters.add("fault.coalesced_io_errors")
                raise IoError(
                    f"{thread.name}: coalesced fault at {vaddr:#x} failed "
                    "with the leader's I/O error"
                )
            yield from thread.kernel_phase(self.costs.pte_update_return_ns, "return")
            return pfn

        # A constant label: the (pid, vpn) identity lives in the
        # ``_inflight`` key, and formatting it per fault would put a
        # string build on every uncontended page-lock acquisition.
        completion = Completion(self.sim, "fault-page-lock")
        self._inflight[key] = completion
        pfn = None
        try:
            decoded = decode_pte(thread.process.page_table.get_pte(vaddr))
            swap_lba = self._anon_swap_lba(vma, decoded)
            if vma.is_file_backed or swap_lba is not None:
                pfn = yield from self._major_fault(
                    thread, vaddr, vma, refill_queue, swap_lba=swap_lba
                )
            else:
                pfn = yield from self._minor_fault(thread, vaddr, vma)
        finally:
            # Fire inside the finally so sleepers are woken (with None)
            # even when the fault path raises — a hung page lock would
            # deadlock every coalesced walker.
            del self._inflight[key]
            completion.fire(pfn)
        return pfn

    def _anon_swap_lba(self, vma: Any, decoded: Any):
        """LBA backing a swapped-out anonymous page, or None.

        Two encodings exist: LBA-augmented PTEs (the §V hardware extension)
        and conventional swap PTEs (the OSDP path, swap offset biased by
        one in the PFN field).
        """
        if vma.is_file_backed:
            return None
        if (
            decoded.status is PteStatus.NON_RESIDENT_HW
            and decoded.lba != ANON_FIRST_TOUCH_LBA
        ):
            return decoded.lba
        if decoded.status is PteStatus.NON_RESIDENT_OS and decoded.pfn > 0:
            return self.kernel.swap_file.lba_of_page(decoded.pfn - 1)
        return None

    # ------------------------------------------------------------------
    # conventional OS-handled major fault (OSDP; also the HWDP fallback)
    # ------------------------------------------------------------------
    # repro: hot-path
    def _major_fault(
        self,
        thread: Any,
        vaddr: int,
        vma: Any,
        refill_queue: bool = False,
        swap_lba: Optional[int] = None,
    ) -> Generator[Any, Any, int]:
        kernel = self.kernel
        costs = self.costs
        counters = kernel.counters
        counters.add("fault.major")
        yield from thread.kernel_phase(costs.handler_entry_ns, "handler_entry")

        file = vma.file
        if file is not None:
            file_page = vma.file_page_of(vaddr)
            cached = kernel.page_cache.lookup(file, file_page)
            if cached is not None:
                # Minor fault on a cached file page: map it, no device I/O.
                counters.add("fault.minor_cached")
                yield from thread.kernel_phase(costs.pte_update_return_ns, "return")
                kernel.map_cached_page(thread.process, vma, vaddr, cached)
                return cached
            nsid = file.nsid
            lba = file.lba_of_page(file_page)
        else:
            # Swapped-out anonymous page: read it back from swap space;
            # no page cache is involved.
            if swap_lba is None:
                raise SegmentationFault(
                    f"anonymous major fault at {vaddr:#x} without a swap LBA"
                )
            nsid = kernel.swap_file.nsid
            lba = swap_lba
            counters.add("fault.anon_swapin")

        pfn = yield from kernel.alloc_frame(thread)
        resilience = kernel.config.resilience
        command = None
        for attempt in range(1 + resilience.os_io_retries):
            yield from thread.kernel_phase(costs.io_submit_ns, "io_submit")
            io_done = kernel.blockio.submit_read(nsid, lba, dma_addr=pfn)

            # The switch-out overlaps the device I/O (it happens after the
            # doorbell), as does the fallback path's queue refill (§IV-D).
            yield from thread.kernel_phase(
                costs.context_switch_out_ns, "context_switch_out"
            )
            if refill_queue and attempt == 0:
                counters.add("fault.sync_refill")
                yield from kernel.refill_free_page_queue(
                    thread, reason="sync", core_id=thread.core.core_id
                )
            span = thread.active_span
            if span is not None:
                waited_from = self.sim.now
            command = yield from thread.block(io_done)
            if span is not None:
                span.event(waited_from, "device_service", self.sim.now - waited_from)

            yield from thread.kernel_phase(
                costs.interrupt_delivery_ns, "interrupt_delivery"
            )
            yield from thread.kernel_phase(costs.io_completion_ns, "io_completion")
            if command is None or command.ok:
                break
            counters.add("fault.io_errors")
            if attempt < resilience.os_io_retries:
                counters.add("fault.io_retries")
                yield from thread.kernel_phase(
                    resilience.os_retry_backoff_ns * (attempt + 1), "io_retry_backoff"
                )
        if command is not None and not command.ok:
            # Retry budget exhausted: free the frame and deliver the error
            # to the faulting thread (SIGBUS / -EIO).
            counters.add("fault.io_errors_delivered")
            kernel.frame_pool.free(pfn)
            raise IoError(
                f"{thread.name}: read of LBA {lba} on nsid {nsid} failed after "
                f"{1 + resilience.os_io_retries} attempts ({command.status.value})"
            )
        yield from thread.kernel_phase(costs.context_switch_in_ns, "context_switch_in")
        yield from thread.kernel_phase(costs.metadata_update_ns, "metadata_update")
        kernel.install_resident_page(thread.process, vma, vaddr, pfn)
        yield from thread.kernel_phase(costs.pte_update_return_ns, "return")
        return pfn

    # ------------------------------------------------------------------
    # anonymous minor fault
    # ------------------------------------------------------------------
    # repro: hot-path
    def _minor_fault(self, thread: Any, vaddr: int, vma: Any) -> Generator[Any, Any, int]:
        kernel = self.kernel
        kernel.counters.add("fault.minor_anon")
        yield from thread.kernel_phase(self.costs.handler_entry_ns, "handler_entry")
        pfn = yield from kernel.alloc_frame(thread)
        yield from thread.kernel_phase(self.costs.metadata_update_ns, "metadata_update")
        kernel.install_resident_page(thread.process, vma, vaddr, pfn)
        yield from thread.kernel_phase(self.costs.pte_update_return_ns, "return")
        return pfn

    # ------------------------------------------------------------------
    # software-emulated SMU (SWDP, §VI-A)
    # ------------------------------------------------------------------
    # repro: hot-path
    def _swdp_fault(
        self, thread: Any, vaddr: int, vma: Any, decoded: Any
    ) -> Generator[Any, Any, int]:
        kernel = self.kernel
        pmshr = self.sw_pmshr
        kernel.counters.add("fault.swdp")
        span = thread.active_span
        if span is not None:
            span.path = obs.PATH_SWDP
        walk = thread.process.page_table.walk(vaddr)

        # Atomic probe-then-claim through one call site (the emulated PMSHR
        # is the same structure the hardware fuses into one CAM cycle).
        while True:
            entry, created = pmshr.lookup_or_allocate(
                walk.pte_addr,
                walk.pmd_entry_addr,
                walk.pud_entry_addr,
                decoded.device_id,
                decoded.lba,
            )
            if entry is not None:
                break
            kernel.counters.add("fault.swdp_pmshr_full")
            if span is not None:
                waited_from = self.sim.now
            yield from thread.mwait(pmshr.slot_freed)
            if span is not None:
                span.event(waited_from, "pmshr_full_wait", self.sim.now - waited_from)

        if not created:
            kernel.counters.add("fault.swdp_coalesced")
            if span is not None:
                span.outcome = obs.COALESCED
                waited_from = self.sim.now
            pfn = yield from thread.mwait(entry.completion)
            if span is not None:
                span.event(waited_from, "coalesced_wait", self.sim.now - waited_from)
            if pfn is None:  # leader failed over to the OS path
                pfn = yield from self._coalesced_os_fault(
                    thread, vaddr, vma, refill_queue=True
                )
                return pfn
            yield from thread.kernel_phase(self.sw_costs.emu_complete_ns / 2, "emu_tail")
            return pfn
        pop = kernel.free_queue_for(thread.core.core_id).pop()
        if pop.empty:
            # Paper §IV-D: fail to the OS handler, which also refills.
            kernel.counters.add("fault.swdp_queue_empty")
            pmshr.release(entry, None)
            pfn = yield from self._coalesced_os_fault(
                thread, vaddr, vma, refill_queue=True
            )
            return pfn
        entry.pfn = pop.pfn

        # The memory-table PMSHR suffers cache-line contention with many
        # outstanding faults — the paper's own SW-model limitation (§VI-C).
        contention = self.sw_costs.contention_ns_per_outstanding * max(
            0, pmshr.outstanding - 1
        )
        yield from thread.kernel_phase(
            self.sw_costs.emu_submit_ns + contention, "emu_submit"
        )
        if decoded.lba == ANON_FIRST_TOUCH_LBA and not vma.is_file_backed:
            # §V anonymous extension, emulated: zero-fill, no I/O.
            kernel.counters.add("fault.swdp_anon_zero_fill")
            yield from thread.kernel_phase(
                kernel.config.smu.anon_zero_fill_ns, "emu_zero_fill"
            )
        else:
            resilience = kernel.config.resilience
            command = None
            for attempt in range(1 + resilience.smu_io_retries):
                io_done = kernel.smu_blockio.submit_read(
                    kernel.nsid_for_vma(vma), decoded.lba, dma_addr=pop.pfn
                )
                if span is not None:
                    waited_from = self.sim.now
                command = yield from thread.mwait(io_done)
                if span is not None:
                    span.event(waited_from, "device_service", self.sim.now - waited_from)
                if command is None or command.ok:
                    break
                kernel.counters.add("fault.swdp_io_errors")
                if attempt < resilience.smu_io_retries:
                    # Re-driving the emulated submission costs another
                    # software submit pass.
                    yield from thread.kernel_phase(
                        self.sw_costs.emu_submit_ns, "emu_retry"
                    )
            if command is not None and not command.ok:
                # Same degradation as the hardware SMU: give the frame
                # back, wake coalesced walks with None, fail over to the
                # conventional OS path (which does its own retries and
                # ultimately delivers IoError).
                kernel.counters.add("fault.swdp_io_error_failures")
                kernel.frame_pool.free(pop.pfn)
                pmshr.release(entry, None)
                pfn = yield from self._coalesced_os_fault(
                    thread, vaddr, vma, refill_queue=False
                )
                return pfn
        yield from thread.kernel_phase(self.sw_costs.emu_complete_ns, "emu_complete")
        kernel.hw_install_page(thread.process, vma, vaddr, walk, pop.pfn)
        pmshr.release(entry, pop.pfn)
        return pop.pfn

    # ------------------------------------------------------------------
    @property
    def inflight_faults(self) -> int:
        return len(self._inflight)
