"""Background kernel threads: kpted and kpoold (paper §IV-C, §IV-D).

**kpted** periodically scans the page tables of processes with fast-mmap
areas, pruned by the LBA bits in PUD/PMD entries, and batch-updates the OS
metadata (LRU insertion, rmap, page-cache insertion) of hardware-handled
pages, finally clearing each PTE's LBA bit.  Batching makes the per-page
update cheaper than the inline OSDP update (``kpted_batch_factor``).

**kpoold** periodically tops up the SMU's free-page queue so the
synchronous-refill fallback (an OS-handled fault) stays rare — the paper
reports kpoold cuts those faults by 44.3–78.4 %.

Both run as kernel-context threads on their own logical cores, so their
instructions and cycles are attributable (Figure 15 reports them
separately).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.cpu.thread import ThreadContext
from repro.sim import Delay

#: Charge kernel time in slices of this many pages to bound event counts.
_CHARGE_BATCH = 64


class Kpted:
    """The OS-metadata synchronisation daemon."""

    def __init__(self, kernel: Any, thread: ThreadContext):
        self.kernel = kernel
        self.thread = thread
        self.config = kernel.config.control_plane
        self.passes = 0
        self.pages_synced = 0

    def run(self) -> Generator[Any, Any, None]:
        """Main loop: sleep one period, then scan-and-sync."""
        while not self.kernel.shutdown:
            yield Delay(self.config.kpted_period_ns)
            if self.kernel.shutdown:
                return
            yield from self.sync_pass()

    def sync_pass(self) -> Generator[Any, Any, int]:
        """One full scan over every process with fast-mmap areas."""
        self.passes += 1
        synced = 0
        for process in list(self.kernel.processes):
            if process.terminated or not process.layout.fastmap_vmas():
                continue
            report = process.page_table.collect_pending_sync()
            scan_ns = self.config.kpted_scan_entry_ns * (
                report.upper_visited + report.ptes_visited / 8.0
            )
            yield from self.thread.kernel_phase(scan_ns, "kpted_scan")
            update_ns = (
                self.kernel.config.osdp_costs.metadata_update_ns
                * self.config.kpted_batch_factor
            )
            for start in range(0, len(report.pending), _CHARGE_BATCH):
                batch = report.pending[start : start + _CHARGE_BATCH]
                for vpn, pte_addr in batch:
                    if self.kernel.sync_hw_page(process, vpn << 12, pte_addr):
                        synced += 1
                yield from self.thread.kernel_phase(
                    update_ns * len(batch), "kpted_update"
                )
        self.pages_synced += synced
        self.kernel.counters.add("kpted.pages_synced", synced)
        return synced


class Kswapd:
    """Background page reclaim (vanilla-Linux behaviour, every mode).

    Wakes when an allocation path signals memory pressure (free frames
    below the low watermark) — or on a fallback poll — and reclaims LRU
    victims until the high watermark is restored, keeping direct reclaim
    off the fault paths' critical path.
    """

    #: Victims evicted per cost-charging slice.
    BATCH = 32

    def __init__(self, kernel: Any, thread: ThreadContext):
        self.kernel = kernel
        self.thread = thread
        self.config = kernel.config.control_plane
        self.wakeups = 0
        self.pages_reclaimed = 0

    def run(self) -> Generator[Any, Any, None]:
        from repro.sim import WaitSignal

        kernel = self.kernel
        while not kernel.shutdown:
            # Purely pressure-driven: every allocation below the low
            # watermark fires the signal, so there is no missed-wake
            # window that a fallback timer would need to cover (and no
            # perpetual timer to keep an idle simulation alive).
            yield WaitSignal(kernel.memory_pressure)
            if kernel.shutdown:
                return
            if not kernel.frame_pool.below_low_watermark:
                continue
            self.wakeups += 1
            yield from self._reclaim_to_high_watermark()

    def _reclaim_to_high_watermark(self) -> Generator[Any, Any, None]:
        kernel = self.kernel
        while kernel.frame_pool.below_high_watermark and not kernel.shutdown:
            target = (
                kernel.config.memory.high_watermark - kernel.frame_pool.free_frames
            )
            victims = kernel.reclaim.select_victims(min(self.BATCH, target))
            if not victims:
                return  # nothing reclaimable; direct reclaim/OOM will decide
            for page in victims:
                kernel.evict_page(page)
            self.pages_reclaimed += len(victims)
            kernel.counters.add("reclaim.kswapd_pages", len(victims))
            yield from self.thread.kernel_phase(
                self.config.kswapd_page_reclaim_ns * len(victims), "kswapd"
            )


class Kpoold:
    """The free-page-queue refill daemon."""

    def __init__(self, kernel: Any, thread: ThreadContext):
        self.kernel = kernel
        self.thread = thread
        self.config = kernel.config.control_plane
        self.refill_passes = 0

    def run(self) -> Generator[Any, Any, None]:
        while not self.kernel.shutdown:
            yield Delay(self.config.kpoold_period_ns)
            if self.kernel.shutdown:
                return
            queues = self.kernel.iter_free_queues()
            if not queues or all(queue.space == 0 for queue in queues):
                continue
            self.refill_passes += 1
            yield from self.kernel.refill_free_page_queue(self.thread, reason="kpoold")
