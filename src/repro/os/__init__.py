"""OS model: kernel, fault handling, memory management, file system, daemons."""

from repro.os.blockio import BlockIoStack
from repro.os.fault import PageFaultHandler
from repro.os.filesystem import File, FileSystem
from repro.os.kernel import Kernel
from repro.os.kthreads import Kpoold, Kpted, Kswapd
from repro.os.lru import LruLists, PageInfo
from repro.os.page_cache import PageCache
from repro.os.process import ProcessContext
from repro.os.reclaim import (
    ReclaimPolicy,
    create_reclaim_policy,
    reclaim_policy_names,
    register_reclaim_policy,
)
from repro.os.vma import AddressSpaceLayout, MmapFlags, Vma

__all__ = [
    "Kernel",
    "PageFaultHandler",
    "BlockIoStack",
    "FileSystem",
    "File",
    "LruLists",
    "PageInfo",
    "ReclaimPolicy",
    "create_reclaim_policy",
    "reclaim_policy_names",
    "register_reclaim_policy",
    "PageCache",
    "ProcessContext",
    "Vma",
    "MmapFlags",
    "AddressSpaceLayout",
    "Kpted",
    "Kpoold",
    "Kswapd",
]
