"""Virtual memory areas and the extended mmap flags.

The paper extends POSIX ``mmap()`` with a flag selecting hardware-based
demand paging per area (§IV-B).  ``MmapFlags.FASTMAP`` is that flag;
``MAP_POPULATE`` is modelled too because the paper's "ideal" baseline in
Figure 4 uses it to preload everything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.config import PAGE_SIZE
from repro.errors import KernelError
from repro.mem.address import page_align_up, page_number
from repro.os.filesystem import File


class MmapFlags(enum.Flag):
    NONE = 0
    #: The paper's new flag: LBA-augment this area's PTEs and let the SMU
    #: (or the SW-emulated SMU) handle its page misses.
    FASTMAP = enum.auto()
    #: Preload every page at mmap time (Linux MAP_POPULATE).
    POPULATE = enum.auto()


@dataclass
class Vma:
    """One mapped region of a process's address space."""

    start: int
    num_pages: int
    file: Optional[File]
    file_page_offset: int = 0
    flags: MmapFlags = MmapFlags.NONE
    writable: bool = True

    @property
    def end(self) -> int:
        return self.start + self.num_pages * PAGE_SIZE

    @property
    def is_fastmap(self) -> bool:
        return bool(self.flags & MmapFlags.FASTMAP)

    @property
    def is_file_backed(self) -> bool:
        return self.file is not None

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    def file_page_of(self, vaddr: int) -> int:
        """File page index backing ``vaddr``."""
        if not self.contains(vaddr):
            raise KernelError(f"{vaddr:#x} outside VMA [{self.start:#x}, {self.end:#x})")
        if self.file is None:
            raise KernelError("anonymous VMA has no file pages")
        return self.file_page_offset + (page_number(vaddr) - page_number(self.start))

    def vaddr_of_file_page(self, file_page: int) -> int:
        """Virtual address mapping ``file_page`` (inverse of file_page_of)."""
        index = file_page - self.file_page_offset
        if not 0 <= index < self.num_pages:
            raise KernelError(f"file page {file_page} not mapped by this VMA")
        return self.start + index * PAGE_SIZE

    def pages(self) -> range:
        """Virtual page numbers covered by this VMA."""
        first = page_number(self.start)
        return range(first, first + self.num_pages)


class AddressSpaceLayout:
    """Per-process VMA list with a bump allocator for mmap placement."""

    #: mmap region base, far from null and from any fixed test mappings.
    MMAP_BASE = 0x10_0000_0000

    def __init__(self) -> None:
        self.vmas: List[Vma] = []
        self._next_mmap = self.MMAP_BASE

    def place(self, length_bytes: int) -> int:
        """Reserve an address range for a new mapping; returns its start."""
        if length_bytes <= 0:
            raise KernelError("mmap length must be positive")
        start = self._next_mmap
        # Guard page between mappings catches off-by-one walkers.
        self._next_mmap += page_align_up(length_bytes) + PAGE_SIZE
        return start

    def insert(self, vma: Vma) -> None:
        for existing in self.vmas:
            if vma.start < existing.end and existing.start < vma.end:
                raise KernelError(
                    f"VMA [{vma.start:#x}, {vma.end:#x}) overlaps "
                    f"[{existing.start:#x}, {existing.end:#x})"
                )
        self.vmas.append(vma)

    def remove(self, vma: Vma) -> None:
        try:
            self.vmas.remove(vma)
        except ValueError:
            raise KernelError("unmapping a VMA that is not mapped") from None

    def find(self, vaddr: int) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.contains(vaddr):
                return vma
        return None

    def fastmap_vmas(self) -> List[Vma]:
        return [vma for vma in self.vmas if vma.is_fastmap]
