"""Kernel block-I/O stack: OS-managed NVMe queues with interrupt completion.

This is the I/O path of conventional demand paging (OSDP): the fault handler
submits a read through here, blocks, and an interrupt eventually fires the
per-command completion.  The *latency costs* of submission and completion
are charged by the fault path from :class:`repro.config.OsdpCosts`; this
module provides the mechanics (queue pair, dispatcher, per-command
completions) and the write path used by the KV-store's WAL/flush traffic.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from repro.errors import KernelError
from repro.sim import Completion, Simulator, spawn
from repro.storage.nvme import NVMeCommand, NVMeDevice, NVMeOpcode


class BlockIoStack:
    """One device's OS-managed I/O queues plus the interrupt dispatcher."""

    def __init__(self, sim: Simulator, device: NVMeDevice, queue_depth: int = 1024):
        self.sim = sim
        self.device = device
        self.qp = device.create_queue_pair(
            depth=queue_depth, interrupt_enabled=True, owner="os"
        )
        self._cid_counter = itertools.count(1)
        self._inflight: Dict[int, Completion] = {}
        self.reads_submitted = 0
        self.writes_submitted = 0
        self.read_errors = 0
        self.write_errors = 0
        #: Invoked from the interrupt dispatcher when a *write* completes
        #: with an error — the kernel hooks this to latch the failure
        #: against the backing file (Linux's errseq_t / AS_EIO analogue).
        self.on_write_error: Optional[Callable[[NVMeCommand], None]] = None
        spawn(sim, self._interrupt_dispatcher(), f"irq-{device.name}")

    # ------------------------------------------------------------------
    def submit_read(
        self, nsid: int, lba: int, dma_addr: int = 0, context: Any = None
    ) -> Completion:
        """Dispatch a 4 KB read; returns a completion that fires with the command."""
        return self._submit(NVMeOpcode.READ, nsid, lba, dma_addr, context)

    def submit_write(
        self, nsid: int, lba: int, dma_addr: int = 0, context: Any = None
    ) -> Completion:
        """Dispatch a 4 KB write (WAL/flush/writeback traffic).

        ``context`` names the object the write belongs to (the backing
        file) so an error completion can be latched against it.
        """
        return self._submit(NVMeOpcode.WRITE, nsid, lba, dma_addr, context)

    def _submit(
        self,
        opcode: NVMeOpcode,
        nsid: int,
        lba: int,
        dma_addr: int,
        context: Any = None,
    ) -> Completion:
        cid = next(self._cid_counter)
        command = NVMeCommand(
            opcode, nsid=nsid, lba=lba, cid=cid, dma_addr=dma_addr, context=context
        )
        completion = Completion(self.sim, f"io-{cid}")
        self._inflight[cid] = completion
        self.device.submit(self.qp, command)
        if opcode is NVMeOpcode.READ:
            self.reads_submitted += 1
        else:
            self.writes_submitted += 1
        return completion

    # ------------------------------------------------------------------
    def _interrupt_dispatcher(self):
        """Consume CQ entries and fire per-command completions.

        Models the device interrupt: the *delivery* cost is charged by the
        woken fault path (``interrupt_delivery_ns``), not here.
        """
        while True:
            command = yield from self.qp.cq.get()
            completion = self._inflight.pop(command.cid, None)
            if completion is None:
                raise KernelError(f"completion for unknown cid {command.cid}")
            if not command.ok:
                if command.is_write:
                    self.write_errors += 1
                    if self.on_write_error is not None:
                        self.on_write_error(command)
                else:
                    self.read_errors += 1
            completion.fire(command)

    @property
    def inflight(self) -> int:
        return len(self._inflight)
