"""Extent-based file-system model.

The only file-system semantics the paper depends on are:

* mapping a file page index to an on-disk LBA (so `mmap()` can LBA-augment
  PTEs, §IV-B);
* *block remapping* — a copy-on-write or log-structured file system may move
  a file block, and every LBA-augmented PTE referring to it must be updated
  (§IV-B: "whenever a file system changes its block mapping, the routine
  also updates the LBA field of the PTEs").

Files are allocated as page-granular extents on one NVMe namespace.  A
remap hook lets the kernel register the PTE-update routine; files mapped
with the fast-mmap flag are marked so the hook only fires for them, exactly
as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.config import BLOCKS_PER_PAGE
from repro.errors import StorageError
from repro.storage.nvme import Namespace


@dataclass
class File:
    """One file: a name, an inode number, a size in pages, a per-page LBA map."""

    name: str
    num_pages: int
    nsid: int
    #: Inode number, assigned sequentially by the creating filesystem.
    #: The page cache keys on it: unlike ``id()``, it is identical across
    #: processes, which checkpoint state digests depend on.
    ino: int = 0
    #: LBA of each file page (page-granular extents; initially contiguous).
    page_lbas: List[int] = field(default_factory=list)
    #: Set when the file is mapped with the fast-mmap flag (§IV-B) so block
    #: remaps know to update LBA-augmented PTEs.
    fastmap_marked: bool = False
    remaps: int = 0
    #: Lifetime count of writeback errors against this file.
    write_errors: int = 0
    #: Latched until the next ``msync``/``fsync`` observes it — the model's
    #: errseq_t: an async writeback failure is reported exactly once, at
    #: the next synchronisation point.
    pending_write_error: bool = False

    def note_write_error(self) -> None:
        """Record an async writeback failure against this file."""
        self.write_errors += 1
        self.pending_write_error = True

    def consume_write_error(self) -> bool:
        """Report-and-clear the latched error (errseq_t check semantics)."""
        pending = self.pending_write_error
        self.pending_write_error = False
        return pending

    def lba_of_page(self, page_index: int) -> int:
        if not 0 <= page_index < self.num_pages:
            raise StorageError(
                f"file {self.name!r}: page {page_index} out of range (size {self.num_pages})"
            )
        return self.page_lbas[page_index]

    @property
    def size_bytes(self) -> int:
        return self.num_pages * BLOCKS_PER_PAGE * 512


#: Remap-hook signature: (file, page_index, old_lba, new_lba).
RemapHook = Callable[[File, int, int, int], None]


class FileSystem:
    """All files of one namespace."""

    def __init__(self, namespace: Namespace):
        self.namespace = namespace
        self.files: Dict[str, File] = {}
        self._remap_hooks: List[RemapHook] = []
        self._next_ino = 1

    # ------------------------------------------------------------------
    def create_file(self, name: str, num_pages: int) -> File:
        """Create a file of ``num_pages`` pages backed by fresh blocks."""
        if name in self.files:
            raise StorageError(f"file {name!r} already exists")
        if num_pages < 1:
            raise StorageError("file must have at least one page")
        first_lba = self.namespace.allocate_blocks(num_pages * BLOCKS_PER_PAGE)
        file = File(
            name=name,
            num_pages=num_pages,
            nsid=self.namespace.nsid,
            ino=self._next_ino,
            page_lbas=[first_lba + i * BLOCKS_PER_PAGE for i in range(num_pages)],
        )
        self._next_ino += 1
        self.files[name] = file
        return file

    def lookup(self, name: str) -> File:
        file = self.files.get(name)
        if file is None:
            raise StorageError(f"no such file {name!r}")
        return file

    # ------------------------------------------------------------------
    def add_remap_hook(self, hook: RemapHook) -> None:
        """Register the kernel's LBA-augmented-PTE update routine."""
        self._remap_hooks.append(hook)

    def remap_page(self, file: File, page_index: int) -> int:
        """Move one file page to a fresh block (CoW / log-structured update).

        Returns the new LBA.  For fast-mmap-marked files every registered
        hook runs so non-present LBA-augmented PTEs stay coherent.
        """
        old_lba = file.lba_of_page(page_index)
        new_lba = self.namespace.allocate_blocks(BLOCKS_PER_PAGE)
        file.page_lbas[page_index] = new_lba
        file.remaps += 1
        if file.fastmap_marked:
            for hook in self._remap_hooks:
                hook(file, page_index, old_lba, new_lba)
        return new_lba
