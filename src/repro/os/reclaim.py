"""Pluggable page-replacement policies (ROADMAP item 5).

The paper evaluates HWDP under exactly one reclaim policy — the two-list
clock with second chance of §IV-C (:class:`repro.os.lru.LruLists`).  This
module turns that hardcoded choice into a plugin point so the HWDP-vs-OSDP
comparison can be re-run under real policy diversity (the ``policy-zoo``
experiment grid).

A :class:`ReclaimPolicy` owns the resident-page ordering the kernel
consults for eviction.  The kernel calls exactly four mutating methods:

* :meth:`~ReclaimPolicy.insert` — a page became resident;
* :meth:`~ReclaimPolicy.touch` — an access-bit sample (every user access);
* :meth:`~ReclaimPolicy.remove` — the page left residency outside reclaim
  (munmap/teardown);
* :meth:`~ReclaimPolicy.select_victims` — kswapd/direct reclaim asks for
  up to ``count`` victims; the policy hands back pages it no longer tracks.

Every policy honours ``PageInfo.pinned``: a pinned page is never selected
as a victim (it rotates back instead), mirroring the nachos/xinu
second-chance treatment of pinned frames.  Policies must be deterministic
— no wall clock, no unseeded RNG, no unordered-set iteration feeding
victim order (the ``repro.check`` linter enforces this).

Shipped policies (registered names):

* ``clock`` — the default two-list clock (:class:`repro.os.lru.LruLists`);
* ``second-chance`` — single circular FIFO with a reference bit;
* ``lru2`` — LRU-2: evict by *penultimate*-access time (pages referenced
  only once leave first);
* ``arc`` — adaptive replacement cache: recency (T1) vs frequency (T2)
  lists balanced by ghost-hit feedback (B1/B2);
* ``happy`` — a HAPPY-style hybrid *address-based* policy: recency order
  cross-checked against per-region access frequency, so one hot region
  cannot be drained by a cold streaming scan.

Select a policy via ``ControlPlaneConfig.reclaim_policy``; add one by
subclassing :class:`ReclaimPolicy` and decorating it with
:func:`register_reclaim_policy` (see docs/policies.md).
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import KernelError

if TYPE_CHECKING:  # pragma: no cover - type-only; repro.os.lru imports us
    from repro.os.lru import PageInfo


class ReclaimPolicy(abc.ABC):
    """Interface between the kernel and one page-replacement policy."""

    #: Registry name (set by the :func:`register_reclaim_policy` decorator).
    policy_name: str = "?"

    def __init__(self) -> None:
        self.insertions = 0
        self.reclaims = 0

    # -- bookkeeping the kernel drives ---------------------------------
    @abc.abstractmethod
    def insert(self, page: "PageInfo") -> None:
        """Track a newly resident page (must reject duplicate PFNs)."""

    @abc.abstractmethod
    def touch(self, pfn: int) -> None:
        """Record one access to ``pfn`` (no-op for untracked frames)."""

    @abc.abstractmethod
    def remove(self, pfn: int) -> Optional["PageInfo"]:
        """Stop tracking ``pfn`` (teardown path); None if untracked."""

    @abc.abstractmethod
    def select_victims(self, count: int) -> List["PageInfo"]:
        """Up to ``count`` eviction victims, removed from the policy.

        Must terminate even when every page is pinned or referenced, and
        must never return a pinned page.
        """

    # -- introspection (tests, experiments) ----------------------------
    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def contains(self, pfn: int) -> bool: ...

    @abc.abstractmethod
    def get(self, pfn: int) -> Optional["PageInfo"]: ...

    def tracked_pfns(self) -> List[int]:
        """Every tracked PFN in ascending order.

        The canonical enumeration :func:`swap_reclaim_policy` migrates
        pages in — ascending PFN, independent of any policy's internal
        ordering, so a mid-run policy swap lands in identical state no
        matter which policy had been driving.
        """
        raise KernelError(
            f"reclaim policy {self.policy_name!r} does not enumerate its pages"
        )

    @property
    def inactive_count(self) -> int:
        """Pages the policy considers cold (policy-specific split)."""
        return len(self)

    @property
    def active_count(self) -> int:
        return 0


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_POLICIES: Dict[str, Callable[[], ReclaimPolicy]] = {}


def register_reclaim_policy(name: str):
    """Class decorator: make a policy constructible by name."""

    def decorator(cls):
        if name in _POLICIES:
            raise KernelError(f"reclaim policy {name!r} registered twice")
        cls.policy_name = name
        _POLICIES[name] = cls
        return cls

    return decorator


def reclaim_policy_names() -> List[str]:
    """Every registered policy name, sorted."""
    _ensure_builtin_policies()
    return sorted(_POLICIES)


def create_reclaim_policy(name: str) -> ReclaimPolicy:
    """Instantiate a registered policy (``ControlPlaneConfig.reclaim_policy``)."""
    _ensure_builtin_policies()
    factory = _POLICIES.get(name)
    if factory is None:
        raise KernelError(
            f"unknown reclaim policy {name!r}; known: {', '.join(sorted(_POLICIES))}"
        )
    return factory()


def _ensure_builtin_policies() -> None:
    # The default "clock" policy lives in repro.os.lru, which imports this
    # module for the base class; importing it lazily here (instead of at
    # module level) keeps the cycle one-directional.
    from repro.os import lru  # noqa: F401


def swap_reclaim_policy(kernel: Any, name: str) -> ReclaimPolicy:
    """Replace the kernel's live reclaim policy mid-run.

    Builds a fresh policy and re-inserts every resident page in ascending
    PFN order — a canonical handoff independent of the outgoing policy's
    internal ordering, so two runs that arrive here with identical
    resident state leave with identical policy state regardless of which
    policy (or process) drove the warmup.  The incoming policy always
    starts with zeroed ``insertions``/``reclaims`` counters, even when
    ``name`` matches the outgoing policy, so post-swap tallies cover
    exactly the post-swap phase.

    This is the divergence point of warm-started experiment cells: one
    shared warmup runs under the default policy, then each forked cell
    swaps in the policy it measures.
    """
    old = kernel.reclaim
    new = create_reclaim_policy(name)
    for pfn in old.tracked_pfns():
        page = old.get(pfn)
        if page is not None:
            new.insert(page)
    kernel.reclaim = new
    return new


# ----------------------------------------------------------------------
# shared scaffolding for single-list policies
# ----------------------------------------------------------------------
class _SingleListPolicy(ReclaimPolicy):
    """Common storage for policies that keep one ordered page dict."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: "OrderedDict[int, PageInfo]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def contains(self, pfn: int) -> bool:
        return pfn in self._pages

    def get(self, pfn: int) -> Optional["PageInfo"]:
        return self._pages.get(pfn)

    def tracked_pfns(self) -> List[int]:
        return sorted(self._pages)

    def _check_new(self, page: "PageInfo") -> None:
        if self.contains(page.pfn):
            raise KernelError(f"PFN {page.pfn} already tracked by {self.policy_name}")

    def remove(self, pfn: int) -> Optional["PageInfo"]:
        return self._pages.pop(pfn, None)


# ----------------------------------------------------------------------
# second-chance FIFO (the nachos/xinu circular-queue algorithm)
# ----------------------------------------------------------------------
@register_reclaim_policy("second-chance")
class SecondChanceFifo(_SingleListPolicy):
    """One circular FIFO with a reference bit and pinning.

    The classic teaching-kernel clock: pages queue in arrival order; the
    hand inspects the head, skips pinned pages, grants one more lap to
    referenced pages (clearing the bit), and evicts the first page that is
    neither.
    """

    def insert(self, page: "PageInfo") -> None:
        self._check_new(page)
        page.active = False
        page.referenced = False
        self._pages[page.pfn] = page
        self.insertions += 1

    def touch(self, pfn: int) -> None:
        page = self._pages.get(pfn)
        if page is not None:
            page.referenced = True

    def select_victims(self, count: int) -> List["PageInfo"]:
        victims: List["PageInfo"] = []
        rotations = 0
        limit = 2 * len(self._pages) + count
        while len(victims) < count and self._pages and rotations < limit:
            rotations += 1
            pfn, page = next(iter(self._pages.items()))
            del self._pages[pfn]
            if page.pinned:
                self._pages[pfn] = page  # skip pinned frames entirely
                continue
            if page.referenced:
                page.referenced = False
                self._pages[pfn] = page  # one more lap
                continue
            victims.append(page)
        self.reclaims += len(victims)
        return victims


# ----------------------------------------------------------------------
# LRU-2
# ----------------------------------------------------------------------
@register_reclaim_policy("lru2")
class Lru2(_SingleListPolicy):
    """LRU-K with K=2: order pages by their penultimate access.

    A logical clock ticks on every insert/touch.  Each page carries
    ``(t_prev, t_last)``; victims are the pages with the smallest
    ``t_prev`` (−1 until a second access), so pages referenced only once
    evict first, in insertion order — the classic scan-resistance
    argument for LRU-2 over LRU.
    """

    def __init__(self) -> None:
        super().__init__()
        self._clock = 0
        #: pfn → (penultimate access, last access); −1 = no second access.
        self._stamps: Dict[int, Tuple[int, int]] = {}

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def insert(self, page: "PageInfo") -> None:
        self._check_new(page)
        page.active = False
        page.referenced = False
        self._pages[page.pfn] = page
        self._stamps[page.pfn] = (-1, self._tick())
        self.insertions += 1

    def touch(self, pfn: int) -> None:
        stamp = self._stamps.get(pfn)
        if stamp is None:
            return
        self._stamps[pfn] = (stamp[1], self._tick())
        page = self._pages[pfn]
        page.active = True  # seen at least twice
        page.referenced = True

    def remove(self, pfn: int) -> Optional["PageInfo"]:
        self._stamps.pop(pfn, None)
        return super().remove(pfn)

    def select_victims(self, count: int) -> List["PageInfo"]:
        # (t_prev, t_last) is a total order: t_last is unique per page.
        candidates = sorted(
            (self._stamps[pfn] + (pfn,) for pfn, page in self._pages.items()
             if not page.pinned),
        )
        victims: List["PageInfo"] = []
        for _prev, _last, pfn in candidates[:count]:
            victims.append(self._pages.pop(pfn))
            del self._stamps[pfn]
        self.reclaims += len(victims)
        return victims

    @property
    def inactive_count(self) -> int:
        return sum(1 for prev, _last in self._stamps.values() if prev < 0)

    @property
    def active_count(self) -> int:
        return len(self._stamps) - self.inactive_count


# ----------------------------------------------------------------------
# ARC (adaptive replacement cache)
# ----------------------------------------------------------------------
@register_reclaim_policy("arc")
class Arc(ReclaimPolicy):
    """ARC adapted to OS reclaim: T1 recency vs T2 frequency + ghosts.

    Resident pages live on T1 (seen once) or T2 (seen again); evicted
    pages leave a ghost key ``(pid, vpn)`` on B1/B2.  A fault that
    re-inserts a ghosted page adapts the target T1 size ``p``: B1 hits
    grow it (recency was underserved), B2 hits shrink it.  The cache
    capacity is learned as the residency high-water mark — the OS, unlike
    a fixed-size cache, discovers its budget from the watermarks.

    Like the clock default, promotion T1→T2 takes a *second* touch (the
    faulting access itself marks the page referenced), so a pure scan
    stays in T1 and cannot flush T2.
    """

    def __init__(self) -> None:
        super().__init__()
        self._t1: "OrderedDict[int, PageInfo]" = OrderedDict()
        self._t2: "OrderedDict[int, PageInfo]" = OrderedDict()
        #: Ghost lists keyed by (pid, vpn) — PFNs recycle across pages.
        self._b1: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self._b2: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self._p = 0.0
        self._capacity = 0

    # -- plumbing -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def contains(self, pfn: int) -> bool:
        return pfn in self._t1 or pfn in self._t2

    def get(self, pfn: int) -> Optional["PageInfo"]:
        return self._t1.get(pfn) or self._t2.get(pfn)

    def tracked_pfns(self) -> List[int]:
        return sorted(list(self._t1) + list(self._t2))

    @property
    def inactive_count(self) -> int:
        return len(self._t1)

    @property
    def active_count(self) -> int:
        return len(self._t2)

    @staticmethod
    def _key(page: "PageInfo") -> Tuple[int, int]:
        return (page.process.pid, page.vpn)

    # -- policy ---------------------------------------------------------
    def insert(self, page: "PageInfo") -> None:
        if self.contains(page.pfn):
            raise KernelError(f"PFN {page.pfn} already tracked by arc")
        page.active = False
        page.referenced = False
        key = self._key(page)
        if key in self._b1:
            # Recency ghost hit: grow T1's target share.
            ratio = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(self._capacity), self._p + ratio)
            del self._b1[key]
            page.active = True
            self._t2[page.pfn] = page
        elif key in self._b2:
            # Frequency ghost hit: shrink T1's target share.
            ratio = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - ratio)
            del self._b2[key]
            page.active = True
            self._t2[page.pfn] = page
        else:
            self._t1[page.pfn] = page
        self._capacity = max(self._capacity, len(self))
        self.insertions += 1

    def touch(self, pfn: int) -> None:
        page = self._t1.get(pfn)
        if page is not None:
            if page.referenced:
                # Second touch since insert: promote to T2's MRU end.
                del self._t1[pfn]
                page.referenced = False
                page.active = True
                self._t2[pfn] = page
            else:
                page.referenced = True
            return
        page = self._t2.get(pfn)
        if page is not None:
            if page.referenced:
                page.referenced = False
                self._t2.move_to_end(pfn)
            else:
                page.referenced = True

    def remove(self, pfn: int) -> Optional["PageInfo"]:
        page = self._t1.pop(pfn, None)
        if page is None:
            page = self._t2.pop(pfn, None)
        return page

    def select_victims(self, count: int) -> List["PageInfo"]:
        victims: List["PageInfo"] = []
        rotations = 0
        limit = 2 * len(self) + count
        while len(victims) < count and len(self) and rotations < limit:
            rotations += 1
            # ARC's REPLACE rule: evict from T1 while it exceeds its
            # target share p, else from T2.
            if self._t1 and (len(self._t1) > self._p or not self._t2):
                source, ghost = self._t1, self._b1
            else:
                source, ghost = self._t2, self._b2
            pfn, page = next(iter(source.items()))
            del source[pfn]
            if page.pinned:
                source[pfn] = page  # rotate pinned pages to the MRU end
                continue
            if page.referenced:
                page.referenced = False
                source[pfn] = page  # one more lap (clock parity)
                continue
            ghost[self._key(page)] = None
            while len(ghost) > max(1, self._capacity):
                ghost.popitem(last=False)
            victims.append(page)
        self.reclaims += len(victims)
        return victims


# ----------------------------------------------------------------------
# HAPPY-style hybrid address-based policy
# ----------------------------------------------------------------------
@register_reclaim_policy("happy")
class HappyHybrid(_SingleListPolicy):
    """Hybrid address-based reclaim (after HAPPY, Ghasempour et al.).

    HAPPY predicts a DRAM row-buffer policy per *address region* instead
    of fixing one policy globally.  The reclaim analogue: keep the global
    recency order, but before evicting, weigh the head of the list
    against the access *frequency of its address region* (``2**region_bits``
    consecutive pages of one address space).  Within a bounded scan
    window the page from the coldest region goes first, so a one-pass
    scan through a cold region cannot evict the working set of a hot one
    — per-region history arbitrates between recency and frequency.

    Region scores decay by halving once enough accesses accumulate,
    keeping the predictor adaptive and the counters bounded.
    """

    #: Pages per scored region (16 pages = 64 KB).
    region_bits = 4
    #: How many list-head pages the victim scan weighs against each other.
    scan_window = 16
    #: Halve all region scores after this many accesses per tracked page.
    decay_factor = 8

    def __init__(self) -> None:
        super().__init__()
        self._region_score: Dict[Tuple[int, int], int] = {}
        self._accesses = 0

    def _region(self, page: "PageInfo") -> Tuple[int, int]:
        return (page.process.pid, page.vpn >> self.region_bits)

    def _credit(self, page: "PageInfo") -> None:
        region = self._region(page)
        self._region_score[region] = self._region_score.get(region, 0) + 1
        self._accesses += 1
        if self._accesses >= self.decay_factor * max(64, len(self._pages)):
            self._accesses = 0
            # dict iteration is insertion-ordered, hence deterministic.
            decayed = {
                region: score // 2
                for region, score in self._region_score.items()
                if score // 2 > 0
            }
            self._region_score = decayed

    def insert(self, page: "PageInfo") -> None:
        self._check_new(page)
        page.active = False
        page.referenced = False
        self._pages[page.pfn] = page
        self.insertions += 1
        self._credit(page)

    def touch(self, pfn: int) -> None:
        page = self._pages.get(pfn)
        if page is None:
            return
        if page.referenced:
            # Lazy MRU move (second touch), like the clock's promotion.
            page.referenced = False
            page.active = True
            self._pages.move_to_end(pfn)
        else:
            page.referenced = True
        self._credit(page)

    def select_victims(self, count: int) -> List["PageInfo"]:
        victims: List["PageInfo"] = []
        while len(victims) < count and self._pages:
            best_pfn = None
            best_score = None
            scanned = 0
            for pfn, page in self._pages.items():
                if scanned >= self.scan_window and best_pfn is not None:
                    break
                scanned += 1
                if page.pinned:
                    continue
                score = self._region_score.get(self._region(page), 0)
                # Strictly-less keeps ties on the oldest (first) page.
                if best_score is None or score < best_score:
                    best_pfn, best_score = pfn, score
            if best_pfn is None:
                break  # every tracked page is pinned
            victims.append(self._pages.pop(best_pfn))
        self.reclaims += len(victims)
        return victims
