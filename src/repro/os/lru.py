"""Resident-page tracking: the OS page descriptors, LRU lists and rmap.

``PageInfo`` is the model's ``struct page``: which process/VMA/file page a
frame holds, plus LRU state.  The reverse map is simply the descriptor's
back-pointers (one mapping per page — the model, like the paper's prototype,
does not share file pages across address spaces; see §V).

Reclaim approximates Linux's two-list clock (the paper argues its 1-second
kpted period is safe because a full LRU rotation takes ≥10 s): pages enter
the *inactive* list, promotion to *active* happens on a touch, and victims
are taken from the inactive head with one second chance.

:class:`LruLists` is the default :class:`repro.os.reclaim.ReclaimPolicy`
(registered as ``"clock"``); alternative policies live in
:mod:`repro.os.reclaim` and are selected via
``ControlPlaneConfig.reclaim_policy``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.errors import KernelError
from repro.os.filesystem import File
from repro.os.reclaim import ReclaimPolicy, register_reclaim_policy
from repro.os.vma import Vma


@dataclass
class PageInfo:
    """Descriptor of one resident frame (the model's ``struct page``)."""

    pfn: int
    process: Any
    vma: Vma
    vaddr: int
    file: Optional[File]
    file_page: Optional[int]
    #: Set while on the active list.
    active: bool = False
    #: Second-chance/reference bit.
    referenced: bool = False
    dirty: bool = False
    #: Pinned frames are never selected as reclaim victims (DMA targets,
    #: kernel-held pages); every reclaim policy skips them.
    pinned: bool = False
    #: Reverse map beyond the primary mapping: additional (process, vma,
    #: vaddr) triples created when another VMA maps the cached page.
    extra_mappings: List[Any] = field(default_factory=list)

    @property
    def vpn(self) -> int:
        return self.vaddr >> 12

    def all_mappings(self):
        """Every (process, vma, vaddr) mapping this frame — the rmap."""
        yield (self.process, self.vma, self.vaddr)
        for mapping in self.extra_mappings:
            yield mapping

    @property
    def mapcount(self) -> int:
        return 1 + len(self.extra_mappings)


@register_reclaim_policy("clock")
class LruLists(ReclaimPolicy):
    """Active/inactive lists with second-chance reclaim (the default)."""

    def __init__(self) -> None:
        super().__init__()
        self._inactive: "OrderedDict[int, PageInfo]" = OrderedDict()
        self._active: "OrderedDict[int, PageInfo]" = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._inactive) + len(self._active)

    @property
    def inactive_count(self) -> int:
        return len(self._inactive)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def contains(self, pfn: int) -> bool:
        return pfn in self._inactive or pfn in self._active

    def get(self, pfn: int) -> Optional[PageInfo]:
        return self._inactive.get(pfn) or self._active.get(pfn)

    def tracked_pfns(self) -> List[int]:
        return sorted(list(self._inactive) + list(self._active))

    # ------------------------------------------------------------------
    def insert(self, page: PageInfo) -> None:
        """New resident page enters the inactive tail."""
        if self.contains(page.pfn):
            raise KernelError(f"PFN {page.pfn} already on an LRU list")
        page.active = False
        page.referenced = False
        self._inactive[page.pfn] = page
        self.insertions += 1

    def touch(self, pfn: int) -> None:
        """Mark referenced; promote inactive→active on second touch."""
        page = self._inactive.get(pfn)
        if page is not None:
            if page.referenced:
                del self._inactive[pfn]
                page.active = True
                # The promotion consumes the reference: a later demotion
                # must not arrive back on the inactive list with a second
                # chance it never earned.
                page.referenced = False
                self._active[pfn] = page
            else:
                page.referenced = True
            return
        page = self._active.get(pfn)
        if page is not None:
            page.referenced = True

    def remove(self, pfn: int) -> Optional[PageInfo]:
        """Take a page off the lists (unmap/munmap path)."""
        page = self._inactive.pop(pfn, None)
        if page is None:
            page = self._active.pop(pfn, None)
        return page

    # ------------------------------------------------------------------
    def select_victims(self, count: int) -> List[PageInfo]:
        """Pick up to ``count`` reclaim victims (inactive head, second chance).

        Referenced inactive pages get one more trip around the list; if the
        inactive list drains, the active head is demoted and considered.
        Pinned pages rotate back untouched.
        """
        victims: List[PageInfo] = []
        rotations = 0
        limit = 2 * (len(self._inactive) + len(self._active)) + count
        while len(victims) < count and rotations < limit:
            rotations += 1
            if self._inactive:
                pfn, page = next(iter(self._inactive.items()))
                del self._inactive[pfn]
                if page.pinned:
                    self._inactive[pfn] = page
                    continue
                if page.referenced:
                    page.referenced = False
                    self._inactive[pfn] = page  # second chance: back to tail
                    continue
                victims.append(page)
            elif self._active:
                pfn, page = next(iter(self._active.items()))
                del self._active[pfn]
                page.active = False
                page.referenced = False
                self._inactive[pfn] = page  # demote, next pass may take it
            else:
                break
        self.reclaims += len(victims)
        return victims
