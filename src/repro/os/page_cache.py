"""OS page cache: (file, page index) → resident frame.

Used on the paths the paper describes: ``mmap()`` consults it to decide
whether a PTE can point at a cached page immediately (§IV-B), the fault
paths insert freshly read pages, kpted inserts hardware-handled pages
(§IV-C), and eviction removes entries.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import KernelError
from repro.os.filesystem import File


class PageCache:
    """A dictionary-shaped radix tree."""

    def __init__(self) -> None:
        self._pages: Dict[Tuple[int, int], int] = {}
        self.lookups = 0
        self.hits = 0

    @staticmethod
    def _key(file: File, page_index: int) -> Tuple[int, int]:
        # Inode numbers are per-filesystem sequential and identical across
        # processes; id() here would poison cross-process checkpoint digests.
        return (file.ino, page_index)

    def lookup(self, file: File, page_index: int) -> Optional[int]:
        """Return the cached PFN for a file page, or None."""
        self.lookups += 1
        pfn = self._pages.get(self._key(file, page_index))
        if pfn is not None:
            self.hits += 1
        return pfn

    def insert(self, file: File, page_index: int, pfn: int) -> None:
        key = self._key(file, page_index)
        existing = self._pages.get(key)
        if existing is not None and existing != pfn:
            raise KernelError(
                f"page cache alias: {file.name}[{page_index}] already cached "
                f"as PFN {existing}, inserting {pfn}"
            )
        self._pages[key] = pfn

    def remove(self, file: File, page_index: int) -> Optional[int]:
        return self._pages.pop(self._key(file, page_index), None)

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
