"""Process contexts: page table + VMA layout + fork semantics."""

from __future__ import annotations

from typing import Any, Optional

from repro.os.vma import AddressSpaceLayout, Vma
from repro.vm.page_table import PageTable
from repro.vm.pte import PteStatus, pte_status, revert_to_normal


def _allocate_pid(kernel: Any) -> int:
    """Next PID from the *kernel's* counter (not a module global).

    PIDs seed ASIDs, and ASIDs place page-table pages in the simulated
    address map — a process-wide counter would make a cell's state (and
    its checkpoint digest) depend on which cells ran before it in the
    same host process.
    """
    pid = getattr(kernel, "_next_pid", 1)
    kernel._next_pid = pid + 1
    return pid


class ProcessContext:
    """One address space (the model has no notion of executable images)."""

    def __init__(self, kernel: Any, name: str = "proc", parent: Optional["ProcessContext"] = None):
        self.kernel = kernel
        self.pid = _allocate_pid(kernel)
        self.name = name
        self.parent = parent
        self.page_table = PageTable(asid=self.pid)
        self.layout = AddressSpaceLayout()
        self.terminated = False
        # Processes can be created (or forked) mid-run, after a
        # simulation-order sanitizer attached; register the new page
        # table so SMU/OS writes to it are conflict-checked too.
        sim = getattr(kernel, "sim", None)
        sanitizer = getattr(sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.watch(self.page_table, f"page_table[{name}#{self.pid}]")

    # ------------------------------------------------------------------
    def find_vma(self, vaddr: int) -> Optional[Vma]:
        return self.layout.find(vaddr)

    def fork(self, name: Optional[str] = None) -> "ProcessContext":
        """Fork: child shares nothing; LBA-augmented PTEs revert (paper §V).

        The paper's scheme does not support sharing file mappings across
        address spaces, so on fork every NON_RESIDENT_HW entry in the
        *parent* reverts to a conventional empty PTE whose future miss the
        OS handles; the child starts with empty tables (its mappings are
        re-established by whatever it maps).
        """
        reverted = 0
        for vpn, value in list(self.page_table.iter_populated()):
            if pte_status(value) is PteStatus.NON_RESIDENT_HW:
                self.page_table.set_pte(vpn << 12, revert_to_normal(value))
                reverted += 1
        # Fast-mmap VMAs lose their hardware handling in both parent and child.
        for vma in self.layout.fastmap_vmas():
            vma.flags &= ~type(vma.flags).FASTMAP
        child = ProcessContext(self.kernel, name or f"{self.name}-child", parent=self)
        child._reverted_on_fork = reverted  # introspection for tests
        return child
