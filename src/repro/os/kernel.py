"""The kernel facade: memory management, syscalls, and the control plane.

One :class:`Kernel` instance models the OS of one simulated machine.  It
wires together the frame pool, page cache, LRU lists, file system, block
layer and fault handler, and implements the paper's OS support (§IV):

* the extended ``mmap()`` with the fast-mmap flag (LBA-augmenting PTEs and
  marking the file for block-remap propagation);
* metadata synchronisation for hardware-handled page misses (shared by
  kpted, ``msync``/``fsync`` and ``munmap``);
* free-page-queue refill (synchronous fallback and kpoold);
* page replacement that turns evicted fast-mmap pages back into
  LBA-augmented PTEs;
* fork-time reversion of LBA-augmented PTEs (§V).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.config import PagingMode, SystemConfig
from repro.cpu.core import CpuComplex
from repro.errors import IoError, KernelError, OutOfMemoryError
from repro.mem.address import PAGE_SHIFT
from repro.mem.physmem import FramePool
from repro.os.blockio import BlockIoStack
from repro.os.fault import PageFaultHandler
from repro.os.filesystem import File, FileSystem
from repro.os.lru import PageInfo
from repro.os.reclaim import ReclaimPolicy, create_reclaim_policy
from repro.os.page_cache import PageCache
from repro.os.process import ProcessContext
from repro.os.vma import MmapFlags, Vma
from repro.sim import Counter, Signal, Simulator
from repro.storage.nvme import NVMeDevice
from repro.vm.pte import (
    PteStatus,
    decode_pte,
    evict_to_lba,
    hw_install_frame,
    make_anon_lba_pte,
    make_lba_pte,
    make_present_pte,
    make_swap_pte,
    os_sync_metadata,
    pte_status,
    update_lba,
)

#: Kernel-time slices are charged in batches of this many pages.
_CHARGE_BATCH = 64
#: Cost to populate one PTE during fast mmap (control path, §IV-B).
_MMAP_POPULATE_PTE_NS = 45.0
#: Base cost of entering/leaving any syscall.
_SYSCALL_BASE_NS = 350.0
#: Per-page teardown cost in munmap (PTE clear + TLB shootdown share).
_UNMAP_PAGE_NS = 120.0
#: Per-page direct-reclaim cost (LRU scan, unmap, free).
_RECLAIM_PAGE_NS = 600.0
#: Write-queue throttle: a thread issuing file writes blocks while more
#: than this many of its writes are in flight (models a bounded WAL buffer).
_WRITE_THROTTLE = 32


class Kernel:
    """The OS of one simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        cpu_complex: CpuComplex,
        device: NVMeDevice,
        namespace_blocks: int = 1 << 24,
    ):
        self.sim = sim
        self.config = config
        self.mode = config.mode
        self.cpu_complex = cpu_complex
        self.device = device
        self.counters = Counter()
        self.shutdown = False
        #: Fired by allocation paths when free frames dip below the low
        #: watermark; kswapd sleeps on it.
        self.memory_pressure = Signal(sim, "memory-pressure")

        self.frame_pool = FramePool(config.memory)
        namespace = device.create_namespace(namespace_blocks)
        self.fs = FileSystem(namespace)
        self.fs.add_remap_hook(self._on_block_remap)
        self.page_cache = PageCache()
        #: Pluggable page-replacement policy (``"clock"`` by default).
        self.reclaim: ReclaimPolicy = create_reclaim_policy(
            config.control_plane.reclaim_policy
        )
        self.processes: List[ProcessContext] = []
        #: PFN → PageInfo for every frame the OS knows about.
        self._page_info: dict = {}

        self.blockio = BlockIoStack(sim, device)
        #: Isolated queue for the (software-emulated or hardware) SMU.
        self.smu_blockio: Optional[BlockIoStack] = None
        # Imported lazily: repro.core's package init reaches back into
        # repro.os, so a module-level import would be circular.
        from repro.core.free_page_queue import FreePageQueue

        self.free_page_queue: Optional[FreePageQueue] = None
        #: §V extension: per-logical-core free-page queues (None unless
        #: ``config.smu.per_core_free_queues`` is set).
        self.per_core_queues: Optional[dict] = None
        #: Swap space: a hidden file on the same namespace.  OSDP uses it
        #: with conventional swap PTEs; HWDP/SWDP with LBA-augmented PTEs
        #: (the §V anonymous-page extension).
        self.swap_file: Optional[File] = self.fs.create_file(
            "[swap]", max(256, config.memory.total_frames)
        )
        self._next_swap_page = 0
        if self.mode is not PagingMode.OSDP:
            depth = min(
                config.smu.free_page_queue_depth, config.memory.total_frames // 8
            )
            prefetch = config.smu.prefetch_buffer_entries
            if config.smu.per_core_free_queues:
                cores = cpu_complex.logical_cores
                per_depth = max(4, depth // len(cores))
                self.per_core_queues = {
                    core.core_id: FreePageQueue(per_depth, prefetch)
                    for core in cores
                }
            else:
                self.free_page_queue = FreePageQueue(depth, prefetch)
            if self.mode is PagingMode.SWDP:
                self.smu_blockio = BlockIoStack(sim, device)

        self.fault_handler = PageFaultHandler(self)
        for core in cpu_complex.logical_cores:
            core.mmu.fault_handler = self.fault_handler.handle

        #: The SMU (set by the system builder in HWDP mode).
        self.smu: Optional[Any] = None
        #: Fault injector (set by the system builder when the config
        #: carries a fault plan); consulted by the refill path for
        #: queue-starvation injection.
        self.fault_injector: Optional[Any] = None
        # Async writeback failures are latched against the backing file
        # (errseq_t-style) and reported at the next msync/fsync.
        self.blockio.on_write_error = self._note_write_error

    def _note_write_error(self, command: Any) -> None:
        self.counters.add("writeback.errors")
        if command.context is not None:
            command.context.note_write_error()

    @property
    def lru(self) -> ReclaimPolicy:
        """Historical name for the replacement policy (always ``reclaim``)."""
        return self.reclaim

    # ==================================================================
    # page pinning
    # ==================================================================
    def pin_page(self, pfn: int) -> None:
        """Exempt a resident frame from reclaim (DMA target, kernel hold)."""
        page = self._page_info.get(pfn)
        if page is None:
            raise KernelError(f"cannot pin untracked PFN {pfn}")
        page.pinned = True

    def unpin_page(self, pfn: int) -> None:
        """Make a pinned frame reclaimable again."""
        page = self._page_info.get(pfn)
        if page is None:
            raise KernelError(f"cannot unpin untracked PFN {pfn}")
        page.pinned = False

    # ==================================================================
    # processes
    # ==================================================================
    def create_process(self, name: str = "proc") -> ProcessContext:
        process = ProcessContext(self, name)
        self.processes.append(process)
        return process

    # ==================================================================
    # frame allocation and reclaim
    # ==================================================================
    def alloc_frame(self, thread: Any) -> Generator[Any, Any, int]:
        """Allocate one frame in a fault path (charges the alloc phase).

        Pressure below the low watermark wakes kswapd (background reclaim);
        direct reclaim only runs when the pool is actually empty — the
        Linux division of labour.
        """
        yield from thread.kernel_phase(self.config.osdp_costs.page_alloc_ns, "page_alloc")
        if self.frame_pool.below_low_watermark:
            self.memory_pressure.fire()
        pfn = self.frame_pool.try_alloc()
        if pfn < 0:
            yield from self.direct_reclaim(thread)
            pfn = self.frame_pool.try_alloc()
            if pfn < 0:
                raise OutOfMemoryError("no reclaimable memory left")
        return pfn

    def direct_reclaim(self, thread: Any) -> Generator[Any, Any, int]:
        """Evict pages until the high watermark is met; charges kernel time."""
        target = self.config.memory.high_watermark - self.frame_pool.free_frames
        if target <= 0:
            return 0
        victims = self.reclaim.select_victims(target)
        for start in range(0, len(victims), _CHARGE_BATCH):
            batch = victims[start : start + _CHARGE_BATCH]
            for page in batch:
                self.evict_page(page)
            yield from thread.kernel_phase(
                _RECLAIM_PAGE_NS * len(batch), "direct_reclaim"
            )
        self.counters.add("reclaim.direct_pages", len(victims))
        return len(victims)

    def evict_page(self, page: PageInfo) -> None:
        """Unmap one LRU victim and free its frame.

        In non-OSDP modes a page of a fast-mmap VMA turns back into an
        LBA-augmented PTE (§IV-B eviction rule); otherwise the PTE is
        cleared like any dropped clean file page.
        """
        process = page.process
        table = process.page_table
        current = decode_pte(table.get_pte(page.vaddr))
        if not current.present or current.pfn != page.pfn:
            raise KernelError(
                f"evicting PFN {page.pfn} but PTE({page.vaddr:#x}) does not map it"
            )
        if page.dirty and page.file is not None:
            # Writeback before drop (fire-and-forget; the device write
            # contends with reads, which is the behaviour that matters).
            lba = page.file.lba_of_page(page.file_page)
            self.blockio.submit_write(
                page.file.nsid, lba, dma_addr=page.pfn, context=page.file
            )
            self.counters.add("reclaim.writebacks")
            page.dirty = False
        if self.mode is not PagingMode.OSDP and page.vma.is_fastmap:
            if page.file is not None:
                lba = page.file.lba_of_page(page.file_page)
            else:
                # §V anonymous extension: swap the page out and record the
                # swap LBA so the SMU can fault it back in.
                swap_page = self._alloc_swap_page()
                lba = self.swap_file.lba_of_page(swap_page)
                self.blockio.submit_write(
                    self.swap_file.nsid, lba, dma_addr=page.pfn, context=self.swap_file
                )
                self.counters.add("reclaim.anon_swapped")
            table.set_pte(page.vaddr, evict_to_lba(current.raw, lba))
            self.counters.add("reclaim.lba_augmented")
        elif page.file is None:
            # Conventional anonymous swap-out: the swap offset (biased by
            # one so an empty PTE stays distinguishable) goes in the PTE.
            swap_page = self._alloc_swap_page()
            self.blockio.submit_write(
                self.swap_file.nsid,
                self.swap_file.lba_of_page(swap_page),
                dma_addr=page.pfn,
                context=self.swap_file,
            )
            table.set_pte(page.vaddr, make_swap_pte(swap_page + 1))
            self.counters.add("reclaim.anon_swapped")
        else:
            table.set_pte(page.vaddr, 0)
        # Unmap the rest of the reverse map (other VMAs mapping the frame).
        for other_process, other_vma, other_vaddr in page.extra_mappings:
            other_table = other_process.page_table
            if decode_pte(other_table.get_pte(other_vaddr)).present:
                if (
                    self.mode is not PagingMode.OSDP
                    and other_vma.is_fastmap
                    and other_vma.file is not None
                ):
                    lba = other_vma.file.lba_of_page(other_vma.file_page_of(other_vaddr))
                    other_table.set_pte(
                        other_vaddr,
                        evict_to_lba(other_table.get_pte(other_vaddr), lba),
                    )
                else:
                    other_table.set_pte(other_vaddr, 0)
            self.cpu_complex.tlb_shootdown(other_vaddr >> PAGE_SHIFT)
        page.extra_mappings.clear()
        if page.file is not None:
            self.page_cache.remove(page.file, page.file_page)
        self.cpu_complex.tlb_shootdown(page.vpn)
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note("kernel.page_info", "write")
        self._page_info.pop(page.pfn, None)
        self.frame_pool.free(page.pfn)
        self.counters.add("reclaim.evicted")

    # ==================================================================
    # page installation (fault paths and the SMU call these)
    # ==================================================================
    def install_resident_page(
        self, process: ProcessContext, vma: Vma, vaddr: int, pfn: int
    ) -> int:
        """Conventional install: present PTE + inline OS metadata update."""
        current = decode_pte(process.page_table.get_pte(vaddr))
        if current.present:
            # Lost a race (another path installed first): drop our frame.
            self.frame_pool.free(pfn)
            self.counters.add("install.lost_race")
            return current.pfn
        process.page_table.set_pte(
            vaddr, make_present_pte(pfn, writable=vma.writable)
        )
        self._track_resident(process, vma, vaddr, pfn)
        sink = self.sim.trace
        if sink is not None:
            sink.instant("kernel.pte_install", vaddr=f"{vaddr:#x}", pfn=pfn)
        return pfn

    def map_cached_page(
        self, process: ProcessContext, vma: Vma, vaddr: int, pfn: int
    ) -> None:
        """Map an already-cached file page (minor fault).

        Registers the new mapping in the page's reverse map so eviction and
        teardown can find every PTE referencing the frame.
        """
        process.page_table.set_pte(
            vaddr, make_present_pte(pfn, writable=vma.writable)
        )
        page = self._page_info.get(pfn)
        if page is not None and (process, vma, vaddr) not in page.extra_mappings:
            page.extra_mappings.append((process, vma, vaddr))
        self.reclaim.touch(pfn)

    def hw_install_page(
        self, process: ProcessContext, vma: Vma, vaddr: int, walk: Any, pfn: int
    ) -> None:
        """SMU-style install: PRESENT+LBA PTE, upper bits set, *no* metadata.

        The OS metadata update is deferred to kpted (§IV-C).
        """
        installed = hw_install_frame(walk.pte, pfn)
        process.page_table.write_entry(walk.pte_addr, installed)
        process.page_table.mark_sync_pending(vaddr)
        self.counters.add("install.hw_pending")
        sink = self.sim.trace
        if sink is not None:
            sink.instant("kernel.hw_pte_install", vaddr=f"{vaddr:#x}", pfn=pfn)

    def sync_hw_page(self, process: ProcessContext, vaddr: int, pte_addr: int) -> bool:
        """One deferred metadata update (kpted / msync / munmap path)."""
        value = process.page_table.read_entry(pte_addr)
        if pte_status(value) is not PteStatus.RESIDENT_PENDING_SYNC:
            return False
        vma = process.find_vma(vaddr)
        if vma is None:
            raise KernelError(f"pending-sync PTE at {vaddr:#x} has no VMA")
        decoded = decode_pte(value)
        process.page_table.write_entry(pte_addr, os_sync_metadata(value))
        self._track_resident(process, vma, vaddr, decoded.pfn)
        self.counters.add("sync.pages")
        return True

    def _track_resident(
        self, process: ProcessContext, vma: Vma, vaddr: int, pfn: int
    ) -> None:
        file = vma.file
        file_page = vma.file_page_of(vaddr) if file is not None else None
        page = PageInfo(
            pfn=pfn,
            process=process,
            vma=vma,
            vaddr=vaddr,
            file=file,
            file_page=file_page,
        )
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note("kernel.page_info", "write")
        self.reclaim.insert(page)
        self._page_info[pfn] = page
        if file is not None:
            self.page_cache.insert(file, file_page, pfn)

    def _alloc_swap_page(self) -> int:
        """Bump-allocate one swap page (the model never recycles slots;
        long runs are bounded by swap-file size, a documented scale limit)."""
        if self.swap_file is None:
            raise KernelError("no swap space configured (OSDP mode)")
        page = self._next_swap_page
        if page >= self.swap_file.num_pages:
            raise OutOfMemoryError("swap space exhausted")
        self._next_swap_page += 1
        return page

    # ==================================================================
    # free-page-queue topology (§V per-core extension)
    # ==================================================================
    def free_queue_for(self, core_id: int):
        """The free-page queue serving ``core_id`` (global unless the
        per-core extension is enabled); None in OSDP mode."""
        if self.per_core_queues is not None:
            queue = self.per_core_queues.get(core_id)
            if queue is None:
                raise KernelError(f"no free-page queue for core {core_id}")
            return queue
        return self.free_page_queue

    def iter_free_queues(self):
        """All free-page queues (one, or one per logical core)."""
        if self.per_core_queues is not None:
            return list(self.per_core_queues.values())
        return [self.free_page_queue] if self.free_page_queue is not None else []

    def nsid_for_vma(self, vma: Vma) -> int:
        """Namespace backing a VMA's misses (its file, or swap for anon)."""
        if vma.file is not None:
            return vma.file.nsid
        if self.swap_file is None:
            raise KernelError("anonymous fast paging needs swap space")
        return self.swap_file.nsid

    # ==================================================================
    # access-bit sampling (called from ThreadContext.mem_access)
    # ==================================================================
    def note_access(self, pfn: int, is_write: bool) -> None:
        self.reclaim.touch(pfn)
        if is_write:
            page = self._page_info.get(pfn)
            if page is not None:
                page.dirty = True

    # ==================================================================
    # free-page-queue refill (§IV-D)
    # ==================================================================
    def refill_free_page_queue(
        self, thread: Any, reason: str = "sync", core_id: Optional[int] = None
    ) -> Generator[Any, Any, int]:
        """Top up the SMU's free-page queue(s); charges per-page cost.

        ``core_id`` narrows a synchronous refill to the faulting core's
        queue under the §V per-core extension; kpoold passes None and
        services every queue.
        """
        if self.fault_injector is not None and self.fault_injector.starving(
            self.sim.now
        ):
            # Injected queue starvation: the refill silently does nothing,
            # driving the hardware path into its queue-empty fallback.
            self.counters.add("refill.starved")
            return 0
        if core_id is not None and self.per_core_queues is not None:
            queues = [self.free_queue_for(core_id)]
        else:
            queues = self.iter_free_queues()
        if not queues:
            return 0
        batch_limit = self.config.control_plane.kpoold_refill_batch
        refilled_total = 0
        for queue in queues:
            want = min(queue.space, batch_limit)
            if want <= 0:
                continue
            if self.frame_pool.free_frames - want < self.config.memory.low_watermark:
                # Ask kswapd for background reclaim next time, but restock
                # synchronously now — the queue must not starve the SMU.
                self.memory_pressure.fire()
                yield from self.direct_reclaim(thread)
            available = max(
                0, self.frame_pool.free_frames - self.config.memory.low_watermark
            )
            take = min(want, available)
            if take <= 0:
                continue
            frames = self.frame_pool.alloc_batch(take)
            accepted = queue.refill(frames)
            if accepted < len(frames):
                # ``want`` was computed before reclaim/charging yielded the
                # CPU; a concurrent refill (kpoold vs sync fallback) may
                # have filled the queue meanwhile and ``refill`` is bounded
                # — return the rejected frames instead of leaking them.
                for pfn in frames[accepted:]:
                    self.frame_pool.free(pfn)
                self.counters.add("refill.overflow_returned", len(frames) - accepted)
            yield from thread.kernel_phase(
                self.config.control_plane.kpoold_page_refill_ns * len(frames),
                f"refill_{reason}",
            )
            refilled_total += accepted
        if refilled_total:
            self.counters.add(f"refill.{reason}_pages", refilled_total)
            sink = self.sim.trace
            if sink is not None:
                sink.instant("kernel.queue_refill", reason=reason, pages=refilled_total)
        return refilled_total

    # ==================================================================
    # syscalls
    # ==================================================================
    def sys_mmap(
        self,
        thread: Any,
        file: Optional[File],
        num_pages: int,
        flags: MmapFlags = MmapFlags.NONE,
        file_page_offset: int = 0,
        writable: bool = True,
    ) -> Generator[Any, Any, Vma]:
        """``mmap()`` with the paper's fast-mmap extension (§IV-B)."""
        process = thread.process
        if file is not None and file_page_offset + num_pages > file.num_pages:
            raise KernelError(
                f"mmap beyond EOF of {file.name!r}: "
                f"{file_page_offset}+{num_pages} > {file.num_pages}"
            )
        yield from thread.kernel_phase(_SYSCALL_BASE_NS, "mmap")
        start = process.layout.place(num_pages << PAGE_SHIFT)
        vma = Vma(
            start=start,
            num_pages=num_pages,
            file=file,
            file_page_offset=file_page_offset,
            flags=flags,
            writable=writable,
        )
        process.layout.insert(vma)

        if (
            flags & MmapFlags.FASTMAP
            and file is None
            and self.mode is not PagingMode.OSDP
        ):
            # §V anonymous extension: populate every PTE with the reserved
            # first-touch constant so the SMU zero-fills without I/O.
            for begin in range(0, num_pages, _CHARGE_BATCH * 8):
                count = min(_CHARGE_BATCH * 8, num_pages - begin)
                for index in range(begin, begin + count):
                    process.page_table.set_pte(
                        start + (index << PAGE_SHIFT),
                        make_anon_lba_pte(writable=writable),
                    )
                yield from thread.kernel_phase(
                    _MMAP_POPULATE_PTE_NS * count, "mmap_populate"
                )
            self.counters.add("mmap.anon_fastmap_areas")

        fastmap_active = (
            bool(flags & MmapFlags.FASTMAP)
            and file is not None
            and self.mode is not PagingMode.OSDP
        )
        if fastmap_active:
            file.fastmap_marked = True
            # Populate every PTE with either the cached frame or the LBA —
            # the whole-table population the paper discusses (0.2 % space).
            pages = list(range(num_pages))
            for begin in range(0, num_pages, _CHARGE_BATCH * 8):
                chunk = pages[begin : begin + _CHARGE_BATCH * 8]
                for index in chunk:
                    vaddr = start + (index << PAGE_SHIFT)
                    file_page = file_page_offset + index
                    cached = self.page_cache.lookup(file, file_page)
                    if cached is not None:
                        process.page_table.set_pte(
                            vaddr, make_present_pte(cached, writable=writable)
                        )
                        self.reclaim.touch(cached)
                    else:
                        lba = file.lba_of_page(file_page)
                        process.page_table.set_pte(
                            vaddr, make_lba_pte(lba, writable=writable)
                        )
                yield from thread.kernel_phase(
                    _MMAP_POPULATE_PTE_NS * len(chunk), "mmap_populate"
                )
            self.counters.add("mmap.fastmap_areas")

        if flags & MmapFlags.POPULATE:
            yield from self._populate(thread, vma)
        return vma

    def _populate(self, thread: Any, vma: Vma) -> Generator[Any, Any, None]:
        """MAP_POPULATE: preload every page (warm start for the Fig 4 ideal).

        Bulk-loaded without per-page device time — the experiments use it
        only to build a fully warm baseline, not on any measured path.
        """
        for begin in range(0, vma.num_pages, _CHARGE_BATCH * 4):
            count = min(_CHARGE_BATCH * 4, vma.num_pages - begin)
            for index in range(begin, begin + count):
                vaddr = vma.start + (index << PAGE_SHIFT)
                if decode_pte(thread.process.page_table.get_pte(vaddr)).present:
                    continue
                if vma.file is not None:
                    cached = self.page_cache.lookup(vma.file, vma.file_page_of(vaddr))
                    if cached is not None:
                        self.map_cached_page(thread.process, vma, vaddr, cached)
                        continue
                pfn = self.frame_pool.try_alloc()
                if pfn < 0:
                    raise OutOfMemoryError(
                        "MAP_POPULATE dataset does not fit in memory"
                    )
                self.install_resident_page(thread.process, vma, vaddr, pfn)
            yield from thread.kernel_phase(150.0 * count, "populate")
        self.counters.add("mmap.populated_pages", vma.num_pages)

    def sys_munmap(self, thread: Any, vma: Vma) -> Generator[Any, Any, None]:
        """``munmap()``: SMU barrier, metadata sync, then teardown (§IV-C)."""
        process = thread.process
        yield from thread.kernel_phase(_SYSCALL_BASE_NS, "munmap")
        if self.smu is not None:
            yield from self.smu.barrier(process)
        yield from self._sync_vma(thread, vma)
        pages = list(vma.pages())
        for begin in range(0, len(pages), _CHARGE_BATCH):
            chunk = pages[begin : begin + _CHARGE_BATCH]
            for vpn in chunk:
                self._teardown_page(process, vma, vpn << PAGE_SHIFT)
            yield from thread.kernel_phase(_UNMAP_PAGE_NS * len(chunk), "unmap")
        process.layout.remove(vma)

    def sys_msync(self, thread: Any, vma: Vma) -> Generator[Any, Any, int]:
        """``msync()``/``fsync()``: synchronise deferred metadata first (§IV-C)."""
        yield from thread.kernel_phase(_SYSCALL_BASE_NS, "msync")
        synced = yield from self._sync_vma(thread, vma)
        if vma.file is not None and vma.file.consume_write_error():
            # A writeback of this file failed since the last sync point;
            # report it exactly once (Linux errseq_t semantics).
            self.counters.add("msync.io_errors")
            raise IoError(
                f"{thread.name}: msync of {vma.file.name!r} reports an "
                "earlier writeback error (EIO)"
            )
        return synced

    def _sync_vma(self, thread: Any, vma: Vma) -> Generator[Any, Any, int]:
        process = thread.process
        synced = 0
        pages = list(vma.pages())
        for begin in range(0, len(pages), _CHARGE_BATCH):
            chunk = pages[begin : begin + _CHARGE_BATCH]
            updated = 0
            for vpn in chunk:
                vaddr = vpn << PAGE_SHIFT
                walk = process.page_table.walk(vaddr)
                if not walk.complete:
                    continue
                if pte_status(walk.pte) is PteStatus.RESIDENT_PENDING_SYNC:
                    if self.sync_hw_page(process, vaddr, walk.pte_addr):
                        updated += 1
            if updated:
                yield from thread.kernel_phase(
                    self.config.osdp_costs.metadata_update_ns
                    * self.config.control_plane.kpted_batch_factor
                    * updated,
                    "msync_update",
                )
            synced += updated
        return synced

    def _teardown_page(self, process: ProcessContext, vma: Vma, vaddr: int) -> None:
        previous = process.page_table.clear_pte(vaddr)
        if previous == 0:
            return
        decoded = decode_pte(previous)
        if not decoded.present:
            return
        self.cpu_complex.tlb_shootdown(vaddr >> PAGE_SHIFT)
        page = self._page_info.get(decoded.pfn)
        if page is not None and page.mapcount > 1:
            # Shared frame: drop just this mapping from the reverse map.
            mapping = (process, vma, vaddr)
            if mapping in page.extra_mappings:
                page.extra_mappings.remove(mapping)
            else:
                # The primary mapping went away: promote an extra.
                page.process, page.vma, page.vaddr = page.extra_mappings.pop(0)
                page.file_page = (
                    page.vma.file_page_of(page.vaddr)
                    if page.vma.file is not None
                    else None
                )
            return
        if page is not None:
            sanitizer = self.sim.sanitizer
            if sanitizer is not None:
                sanitizer.note("kernel.page_info", "write")
            self._page_info.pop(decoded.pfn, None)
            self.reclaim.remove(decoded.pfn)
            if page.file is not None:
                self.page_cache.remove(page.file, page.file_page)
        self.frame_pool.free(decoded.pfn)

    def sys_fork(self, thread: Any) -> Generator[Any, Any, ProcessContext]:
        """fork(): reverts LBA-augmented PTEs in the parent (§V)."""
        yield from thread.kernel_phase(_SYSCALL_BASE_NS * 4, "fork")
        child = thread.process.fork()
        self.processes.append(child)
        self.counters.add("fork.count")
        return child

    # ==================================================================
    # file write path (WAL/flush traffic of the KV store)
    # ==================================================================
    def file_write(
        self, thread: Any, file: File, page_index: int
    ) -> Generator[Any, Any, None]:
        """Append-style 4 KB file write (WAL): async submit with throttle."""
        yield from thread.kernel_phase(_SYSCALL_BASE_NS, "write_syscall")
        while self.blockio.inflight >= _WRITE_THROTTLE:
            # Bounded write buffer: wait for the oldest write to land.
            yield from thread.stall(self.config.device.write_latency_ns / 4)
        lba = file.lba_of_page(page_index % file.num_pages)
        self.blockio.submit_write(file.nsid, lba, context=file)
        self.counters.add("write.submitted")

    # ==================================================================
    # block-remap hook (§IV-B)
    # ==================================================================
    def _on_block_remap(self, file: File, page_index: int, old_lba: int, new_lba: int) -> None:
        """File system moved a block: update LBA-augmented PTEs in place."""
        for process in self.processes:
            for vma in process.layout.fastmap_vmas():
                if vma.file is not file:
                    continue
                if not (
                    vma.file_page_offset
                    <= page_index
                    < vma.file_page_offset + vma.num_pages
                ):
                    continue
                vaddr = vma.vaddr_of_file_page(page_index)
                value = process.page_table.get_pte(vaddr)
                if pte_status(value) is PteStatus.NON_RESIDENT_HW:
                    process.page_table.set_pte(vaddr, update_lba(value, new_lba))
                    self.counters.add("remap.pte_updates")

    # ==================================================================
    def stop(self) -> None:
        """Signal kernel daemons to exit at their next wake-up."""
        self.shutdown = True
        # kswapd sleeps on the pressure signal; nudge it so it observes
        # the shutdown flag and terminates.
        self.memory_pressure.fire()
