"""LBA-augmented page-table-entry codec (paper §III-B, Figure 6, Table I).

A PTE is a 64-bit integer.  Two layouts exist, selected by the PRESENT and
LBA bits:

**Present page** (Figure 6a)::

    bit  0        PRESENT = 1
    bits 1..8     protection / status flags (W, USER, PWT, PCD, A, D, PAT, G)
    bit  10       LBA bit — with PRESENT=1 it means "page miss was handled
                  by hardware; OS metadata not yet synchronised" (Table I)
    bits 12..51   PFN (40 bits)
    bits 59..62   protection key (x86 pkeys)
    bit  63       NX

**Non-present, LBA-augmented page** (Figure 6b)::

    bit  0        PRESENT = 0
    bits 1..8     preserved protection flags (so the hardware-installed
                  mapping keeps page-level permissions, §III-B)
    bit  10       LBA bit = 1 — the PFN field holds a storage location and
                  a page miss is handled by hardware
    bits 12..52   LBA (41 bits → up to 1 PB per namespace)
    bits 53..55   device ID (3 bits → 8 devices per socket)
    bits 56..58   socket ID (3 bits → 8 sockets; selects the home SMU)
    bits 59..62   protection key
    bit  63       NX

A non-present PTE with the LBA bit *clear* is a conventional invalid entry
(swap offset or empty) and faults to the OS.

Upper-level entries (PMD/PUD) reuse the LBA bit with a different meaning
(§III-B, Table I): "some PTE below was hardware-handled and awaits OS
metadata synchronisation".  :func:`describe_upper` captures that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PageTableError

# ----------------------------------------------------------------------
# Bit layout
# ----------------------------------------------------------------------
PRESENT_BIT = 1 << 0
WRITABLE_BIT = 1 << 1
USER_BIT = 1 << 2
PWT_BIT = 1 << 3
PCD_BIT = 1 << 4
ACCESSED_BIT = 1 << 5
DIRTY_BIT = 1 << 6
PAT_BIT = 1 << 7
GLOBAL_BIT = 1 << 8
#: The paper's prototype repurposes software-available bit 10 as the LBA bit.
LBA_BIT = 1 << 10

PROT_MASK = (
    WRITABLE_BIT | USER_BIT | PWT_BIT | PCD_BIT | ACCESSED_BIT | DIRTY_BIT | PAT_BIT | GLOBAL_BIT
)

PFN_SHIFT = 12
PFN_BITS = 40
PFN_MASK = ((1 << PFN_BITS) - 1) << PFN_SHIFT

LBA_SHIFT = 12
LBA_BITS = 41
LBA_FIELD_MASK = ((1 << LBA_BITS) - 1) << LBA_SHIFT

DEVICE_SHIFT = 53
DEVICE_BITS = 3
DEVICE_FIELD_MASK = ((1 << DEVICE_BITS) - 1) << DEVICE_SHIFT

SOCKET_SHIFT = 56
SOCKET_BITS = 3
SOCKET_FIELD_MASK = ((1 << SOCKET_BITS) - 1) << SOCKET_SHIFT

PKEY_SHIFT = 59
PKEY_BITS = 4
PKEY_MASK = ((1 << PKEY_BITS) - 1) << PKEY_SHIFT

NX_BIT = 1 << 63

MAX_PFN = (1 << PFN_BITS) - 1
MAX_LBA = (1 << LBA_BITS) - 1

#: Anonymous-page extension (paper §V): a reserved LBA-field constant marks
#: "first touch of an anonymous page".  The SMU recognises it and bypasses
#: I/O processing, handing back a zero-filled frame.  The all-ones LBA is
#: safe to reserve: it would name the last 512 bytes of a maximal 1 PB
#: namespace, which no page-sized allocation ever starts at.
ANON_FIRST_TOUCH_LBA = MAX_LBA
MAX_DEVICE_ID = (1 << DEVICE_BITS) - 1
MAX_SOCKET_ID = (1 << SOCKET_BITS) - 1
MAX_PKEY = (1 << PKEY_BITS) - 1


class PteStatus(enum.Enum):
    """The four leaf-PTE states of Table I."""

    #: PRESENT=0, LBA=0 — invalid/swap entry; page miss handled by the OS.
    NON_RESIDENT_OS = "non-resident, not LBA-augmented (OS handles miss)"
    #: PRESENT=0, LBA=1 — LBA-augmented; page miss handled by hardware.
    NON_RESIDENT_HW = "non-resident, LBA-augmented (hardware handles miss)"
    #: PRESENT=1, LBA=1 — hardware installed the page; OS metadata pending.
    RESIDENT_PENDING_SYNC = "resident, hardware-handled, OS metadata not updated"
    #: PRESENT=1, LBA=0 — a conventional resident page.
    RESIDENT = "resident (conventional)"


class UpperStatus(enum.Enum):
    """Upper-level (PMD/PUD) entry states of Table I."""

    #: LBA=0 — no PTE below needs OS metadata synchronisation.
    NO_SYNC_NEEDED = "no PTE below requires OS metadata update"
    #: LBA=1 — one or more PTEs below were hardware-handled.
    SYNC_NEEDED = "lower table(s) hold hardware-handled PTEs awaiting sync"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def make_present_pte(
    pfn: int,
    *,
    writable: bool = True,
    user: bool = True,
    nx: bool = False,
    pkey: int = 0,
    lba_pending: bool = False,
    accessed: bool = False,
    dirty: bool = False,
    global_page: bool = False,
) -> int:
    """Encode a present PTE (Figure 6a).

    ``lba_pending`` sets the LBA bit alongside PRESENT — the Table I state
    meaning "installed by hardware, OS metadata not yet updated".
    """
    if not 0 <= pfn <= MAX_PFN:
        raise PageTableError(f"PFN {pfn:#x} exceeds {PFN_BITS} bits")
    if not 0 <= pkey <= MAX_PKEY:
        raise PageTableError(f"pkey {pkey} exceeds {PKEY_BITS} bits")
    value = PRESENT_BIT | (pfn << PFN_SHIFT) | (pkey << PKEY_SHIFT)
    if writable:
        value |= WRITABLE_BIT
    if user:
        value |= USER_BIT
    if nx:
        value |= NX_BIT
    if lba_pending:
        value |= LBA_BIT
    if accessed:
        value |= ACCESSED_BIT
    if dirty:
        value |= DIRTY_BIT
    if global_page:
        value |= GLOBAL_BIT
    return value


def make_lba_pte(
    lba: int,
    *,
    device_id: int = 0,
    socket_id: int = 0,
    writable: bool = True,
    user: bool = True,
    nx: bool = False,
    pkey: int = 0,
) -> int:
    """Encode a non-present LBA-augmented PTE (Figure 6b)."""
    if not 0 <= lba <= MAX_LBA:
        raise PageTableError(f"LBA {lba:#x} exceeds {LBA_BITS} bits")
    if not 0 <= device_id <= MAX_DEVICE_ID:
        raise PageTableError(f"device ID {device_id} exceeds {DEVICE_BITS} bits")
    if not 0 <= socket_id <= MAX_SOCKET_ID:
        raise PageTableError(f"socket ID {socket_id} exceeds {SOCKET_BITS} bits")
    if not 0 <= pkey <= MAX_PKEY:
        raise PageTableError(f"pkey {pkey} exceeds {PKEY_BITS} bits")
    value = (
        LBA_BIT
        | (lba << LBA_SHIFT)
        | (device_id << DEVICE_SHIFT)
        | (socket_id << SOCKET_SHIFT)
        | (pkey << PKEY_SHIFT)
    )
    if writable:
        value |= WRITABLE_BIT
    if user:
        value |= USER_BIT
    if nx:
        value |= NX_BIT
    return value


def make_anon_lba_pte(*, writable: bool = True, user: bool = True, nx: bool = False,
                      pkey: int = 0) -> int:
    """A first-touch anonymous PTE for the §V extension: LBA field set to
    the reserved constant so the SMU zero-fills instead of reading disk."""
    return make_lba_pte(
        ANON_FIRST_TOUCH_LBA, writable=writable, user=user, nx=nx, pkey=pkey
    )


def is_anon_first_touch(value: int) -> bool:
    """True when a decoded/raw PTE is a first-touch anonymous marker."""
    decoded = decode_pte(value) if isinstance(value, int) else value
    return (
        decoded.status is PteStatus.NON_RESIDENT_HW
        and decoded.lba == ANON_FIRST_TOUCH_LBA
    )


def make_swap_pte(swap_offset: int) -> int:
    """Encode a conventional non-present swap entry (LBA bit clear).

    The OS stores an architecture-independent swap offset in the PFN field;
    the MMU treats any PRESENT=0, LBA=0 entry as an OS-handled fault.
    """
    if not 0 <= swap_offset <= MAX_PFN:
        raise PageTableError(f"swap offset {swap_offset:#x} too large")
    return swap_offset << PFN_SHIFT


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
@dataclass(slots=True, eq=False)
class DecodedPte:
    """A decoded view of one 64-bit leaf PTE.

    Treated as immutable by every consumer; not ``frozen`` because the
    per-field ``object.__setattr__`` of frozen dataclasses dominates
    :func:`decode_pte` on the miss path (one decode per hardware miss).
    """

    raw: int
    present: bool
    lba_bit: bool
    writable: bool
    user: bool
    nx: bool
    pkey: int
    pfn: int  # valid when present
    lba: int  # valid when LBA-augmented & non-present
    device_id: int
    socket_id: int
    status: PteStatus


def decode_pte(value: int) -> DecodedPte:
    """Decode a leaf PTE into its fields and Table I status."""
    present = bool(value & PRESENT_BIT)
    lba_bit = bool(value & LBA_BIT)
    if present:
        status = PteStatus.RESIDENT_PENDING_SYNC if lba_bit else PteStatus.RESIDENT
    else:
        status = PteStatus.NON_RESIDENT_HW if lba_bit else PteStatus.NON_RESIDENT_OS
    return DecodedPte(
        raw=value,
        present=present,
        lba_bit=lba_bit,
        writable=bool(value & WRITABLE_BIT),
        user=bool(value & USER_BIT),
        nx=bool(value & NX_BIT),
        pkey=(value & PKEY_MASK) >> PKEY_SHIFT,
        pfn=(value & PFN_MASK) >> PFN_SHIFT,
        lba=(value & LBA_FIELD_MASK) >> LBA_SHIFT,
        device_id=(value & DEVICE_FIELD_MASK) >> DEVICE_SHIFT,
        socket_id=(value & SOCKET_FIELD_MASK) >> SOCKET_SHIFT,
        status=status,
    )


def pte_status(value: int) -> PteStatus:
    """Table I status of a leaf PTE."""
    return decode_pte(value).status


def describe_upper(value: int) -> UpperStatus:
    """Table I status of an upper-level (PMD/PUD) entry."""
    return UpperStatus.SYNC_NEEDED if value & LBA_BIT else UpperStatus.NO_SYNC_NEEDED


# ----------------------------------------------------------------------
# Transitions (the state machine of §III-B/§IV)
# ----------------------------------------------------------------------
def hw_install_frame(lba_pte: int, pfn: int) -> int:
    """The SMU's page-table update: LBA field → PFN, PRESENT set.

    The LBA bit is deliberately *kept set* so kpted later knows this PTE's
    OS metadata must be synchronised (§III-C step 7: "SMU does not clear
    the LBA bit").  Protection bits, pkey and NX are preserved.
    """
    decoded = decode_pte(lba_pte)
    if decoded.present or not decoded.lba_bit:
        raise PageTableError(
            f"hw_install_frame on PTE in state {decoded.status}; "
            "expected NON_RESIDENT_HW"
        )
    return make_present_pte(
        pfn,
        writable=decoded.writable,
        user=decoded.user,
        nx=decoded.nx,
        pkey=decoded.pkey,
        lba_pending=True,
    )


def os_sync_metadata(pte: int) -> int:
    """kpted's final act for one PTE: clear the LBA bit (§IV-C)."""
    decoded = decode_pte(pte)
    if decoded.status is not PteStatus.RESIDENT_PENDING_SYNC:
        raise PageTableError(
            f"os_sync_metadata on PTE in state {decoded.status}; "
            "expected RESIDENT_PENDING_SYNC"
        )
    return pte & ~LBA_BIT


def evict_to_lba(present_pte: int, lba: int, *, device_id: int = 0, socket_id: int = 0) -> int:
    """Page replacement in a fast-mmap VMA: present PTE → LBA-augmented.

    Implements §IV-B's eviction rule: record the LBA, clear PRESENT, set the
    LBA bit, preserving protections.
    """
    decoded = decode_pte(present_pte)
    if not decoded.present:
        raise PageTableError("evict_to_lba requires a present PTE")
    return make_lba_pte(
        lba,
        device_id=device_id,
        socket_id=socket_id,
        writable=decoded.writable,
        user=decoded.user,
        nx=decoded.nx,
        pkey=decoded.pkey,
    )


def revert_to_normal(lba_pte: int) -> int:
    """fork() support (§V): LBA-augmented PTE → conventional empty PTE.

    Shared mappings are unsupported, so on fork every LBA-augmented entry
    reverts to an ordinary non-present entry whose miss the OS handles.
    """
    decoded = decode_pte(lba_pte)
    if decoded.present or not decoded.lba_bit:
        raise PageTableError("revert_to_normal requires a NON_RESIDENT_HW PTE")
    return 0


def update_lba(lba_pte: int, new_lba: int, *, device_id: int = None, socket_id: int = None) -> int:
    """File-system block remap (§IV-B): refresh the LBA field in place."""
    decoded = decode_pte(lba_pte)
    if decoded.present or not decoded.lba_bit:
        raise PageTableError("update_lba requires a NON_RESIDENT_HW PTE")
    return make_lba_pte(
        new_lba,
        device_id=decoded.device_id if device_id is None else device_id,
        socket_id=decoded.socket_id if socket_id is None else socket_id,
        writable=decoded.writable,
        user=decoded.user,
        nx=decoded.nx,
        pkey=decoded.pkey,
    )


# ----------------------------------------------------------------------
# Huge-page semantics (§V "Huge Page Support")
# ----------------------------------------------------------------------
#: x86's page-size bit: in a PMD/PUD entry, bit 7 selects a huge mapping
#: (in a leaf PTE the same bit is PAT — context decides, as on real x86).
PS_BIT = PAT_BIT


def make_huge_pmd(pfn: int, **kwargs) -> int:
    """A present PMD-level (2 MB) huge-page mapping: PS bit set."""
    return make_present_pte(pfn, **kwargs) | PS_BIT


def make_huge_lba_pmd(lba: int, **kwargs) -> int:
    """A non-present LBA-augmented huge mapping (§V extension sketch)."""
    return make_lba_pte(lba, **kwargs) | PS_BIT


def is_huge(value: int) -> bool:
    return bool(value & PS_BIT)


def describe_pmd(value: int):
    """§V's dual reading of a PMD entry's LBA bit.

    * PS set — the entry *is* the mapping: the LBA bit carries leaf-PTE
      (Table I) semantics for the huge page itself, so this returns a
      :class:`PteStatus`.
    * PS clear — the entry points at a last-level page table: the LBA bit
      carries the Table I upper-level meaning ("some PTE below was
      hardware-handled"), so this returns an :class:`UpperStatus`.
    """
    if is_huge(value):
        return pte_status(value)
    return describe_upper(value)


def table1_rows():
    """The full Table I as (type, lba, present, pfn-field, description) rows.

    Used by the ``table1_semantics`` experiment to print the reproduced
    table and by tests to assert the codec implements exactly these rows.
    """
    return [
        ("PTE", 0, 0, "0s / swap", PteStatus.NON_RESIDENT_OS.value),
        ("PTE", 1, 0, "LBA", PteStatus.NON_RESIDENT_HW.value),
        ("PTE", 1, 1, "PFN", PteStatus.RESIDENT_PENDING_SYNC.value),
        ("PTE", 0, 1, "PFN", PteStatus.RESIDENT.value),
        ("PUD/PMD", 0, "X", "PFN of next-level table", UpperStatus.NO_SYNC_NEEDED.value),
        ("PUD/PMD", 1, "X", "PFN of next-level table", UpperStatus.SYNC_NEEDED.value),
    ]
