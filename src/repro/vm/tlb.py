"""A simple fully-associative LRU TLB model.

One TLB instance per logical core.  The model only needs hit/miss behaviour
(a hit skips the page-table walk; a miss triggers one) plus invalidation for
unmap/eviction shootdowns; replacement is LRU over virtual page numbers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import ConfigError


class Tlb:
    """Maps VPN → (PFN, writable) with LRU replacement."""

    def __init__(self, entries: int = 1536):
        if entries < 1:
            raise ConfigError("TLB needs at least one entry")
        self.capacity = entries
        self._map: "OrderedDict[int, Tuple[int, bool]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, vpn: int) -> Optional[Tuple[int, bool]]:
        """Return ``(pfn, writable)`` on hit, None on miss."""
        entry = self._map.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        self._map.move_to_end(vpn)
        self.hits += 1
        return entry

    def fill(self, vpn: int, pfn: int, writable: bool) -> None:
        if vpn in self._map:
            self._map.move_to_end(vpn)
        elif len(self._map) >= self.capacity:
            self._map.popitem(last=False)
        self._map[vpn] = (pfn, writable)

    def invalidate(self, vpn: int) -> bool:
        """Drop one translation; returns True if it was cached."""
        if vpn in self._map:
            del self._map[vpn]
            self.invalidations += 1
            return True
        return False

    def flush(self) -> None:
        """Drop everything (context switch to a new address space)."""
        self.invalidations += len(self._map)
        self._map.clear()

    @property
    def occupancy(self) -> int:
        return len(self._map)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
