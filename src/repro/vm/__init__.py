"""Virtual-memory substrate: LBA-augmented PTEs, page tables, TLB, MMU."""

from repro.vm.mmu import Mmu, Translation, TranslationKind
from repro.vm.page_table import PageTable, ScanReport, WalkResult
from repro.vm.pte import (
    DecodedPte,
    PteStatus,
    UpperStatus,
    decode_pte,
    describe_upper,
    evict_to_lba,
    hw_install_frame,
    make_lba_pte,
    make_present_pte,
    make_swap_pte,
    os_sync_metadata,
    pte_status,
    revert_to_normal,
    table1_rows,
    update_lba,
)
from repro.vm.tlb import Tlb

__all__ = [
    "PteStatus",
    "UpperStatus",
    "DecodedPte",
    "decode_pte",
    "describe_upper",
    "make_present_pte",
    "make_lba_pte",
    "make_swap_pte",
    "hw_install_frame",
    "os_sync_metadata",
    "evict_to_lba",
    "revert_to_normal",
    "update_lba",
    "pte_status",
    "table1_rows",
    "PageTable",
    "WalkResult",
    "ScanReport",
    "Tlb",
    "Mmu",
    "Translation",
    "TranslationKind",
]
