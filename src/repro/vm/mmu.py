"""MMU with the paper's extended page-table walker (§III-B).

On a TLB miss the walker inspects the leaf PTE's PRESENT and LBA bits:

* PRESENT — normal translation; fill the TLB.
* not PRESENT, LBA set, SMU attached — *hardware page miss*: the walker
  hands ``(PUD-entry addr, PMD-entry addr, PTE addr, device ID, LBA)`` to
  the SMU and the pipeline stalls until the SMU broadcasts completion.  No
  exception is raised.  If the SMU reports failure (empty free-page queue)
  the walker falls back to a normal exception (§III-C / §IV-D).
* otherwise — raise a page-fault exception into the OS handler (which, in
  SWDP mode, performs the paper's software SMU emulation).

``translate`` is a simulation coroutine: it suspends for walk latency and
for however long miss handling takes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.errors import ProtectionFault, SimulationError
from repro.mem.address import PAGE_SHIFT
from repro.sim import Delay, Simulator
from repro.vm.page_table import WalkResult
from repro.vm.pte import (
    PFN_MASK,
    PFN_SHIFT,
    PRESENT_BIT,
    WRITABLE_BIT,
    PteStatus,
    decode_pte,
)
from repro.vm.tlb import Tlb


class TranslationKind(enum.Enum):
    """How a translation was satisfied (used for perf accounting)."""

    TLB_HIT = "tlb-hit"
    WALK = "walk"
    HW_MISS = "hw-miss"
    HW_FALLBACK_FAULT = "hw-fallback-fault"
    OS_FAULT = "os-fault"


@dataclass(slots=True)
class Translation:
    """Result of one translation."""

    pfn: int
    kind: TranslationKind
    #: End-to-end latency attributed to the miss handling, in ns.
    miss_latency_ns: float = 0.0


#: Signature of the OS fault entry point installed by the system builder:
#: ``handler(thread, vaddr, walk, is_write)`` → generator returning a PFN.
FaultHandler = Callable[..., Generator[Any, Any, int]]


class Mmu:
    """One logical core's MMU: TLB + extended page-table walker."""

    #: Latency of a page-table walk that hits cached table entries.
    WALK_LATENCY_NS = 40.0

    def __init__(self, sim: Simulator, core_id: int, tlb_entries: int = 1536):
        self.sim = sim
        self.core_id = core_id
        self.tlb = Tlb(tlb_entries)
        #: Reusable walk-latency Delay (its ``ns`` never changes and the
        #: process layer consumes yielded Delays synchronously).
        self._walk_delay = Delay(self.WALK_LATENCY_NS)
        #: Installed by the system builder.
        self.fault_handler: Optional[FaultHandler] = None
        #: The home SMU (HWDP mode only).
        self.smu: Optional[Any] = None
        #: Walks that entered the hardware path and were coalesced/pending.
        self.hw_misses = 0
        self.hw_fallbacks = 0

    # ------------------------------------------------------------------
    def translate(
        self, thread: Any, vaddr: int, is_write: bool = False
    ) -> Generator[Any, Any, Translation]:
        """Translate ``vaddr`` for ``thread``; suspends while misses resolve."""
        vpn = vaddr >> PAGE_SHIFT
        cached = self.tlb.lookup(vpn)
        if cached is not None:
            pfn, writable = cached
            if is_write and not writable:
                raise ProtectionFault(f"write to read-only page {vpn:#x}")
            return Translation(pfn, TranslationKind.TLB_HIT)

        yield self._walk_delay
        page_table = thread.process.page_table
        walk = page_table.walk(vaddr)
        pte = walk.pte

        if pte & PRESENT_BIT:
            # Present leaf: the fields the fast path needs are two bit
            # tests away — skip the full decode.
            writable = bool(pte & WRITABLE_BIT)
            if is_write and not writable:
                raise ProtectionFault(f"write to read-only page {vpn:#x}")
            pfn = (pte & PFN_MASK) >> PFN_SHIFT
            self.tlb.fill(vpn, pfn, writable)
            return Translation(pfn, TranslationKind.WALK)

        decoded = decode_pte(pte)
        if decoded.status is PteStatus.NON_RESIDENT_HW and self.smu is not None:
            started = self.sim.now
            self._check_protection(decoded, vpn, is_write)
            pfn = yield from self.smu.handle_miss(walk, decoded, thread)
            if pfn is not None:
                self.hw_misses += 1
                self.tlb.fill(vpn, pfn, decoded.writable)
                return Translation(
                    pfn, TranslationKind.HW_MISS, miss_latency_ns=self.sim.now - started
                )
            # Free-page queue empty: fall back to a normal exception.
            self.hw_fallbacks += 1
            pfn = yield from self._os_fault(thread, vaddr, walk, is_write)
            self.tlb.fill(vpn, pfn, decoded.writable)
            return Translation(
                pfn,
                TranslationKind.HW_FALLBACK_FAULT,
                miss_latency_ns=self.sim.now - started,
            )

        started = self.sim.now
        pfn = yield from self._os_fault(thread, vaddr, walk, is_write)
        installed = decode_pte(page_table.get_pte(vaddr))
        self.tlb.fill(vpn, pfn, installed.writable if installed.present else True)
        return Translation(
            pfn, TranslationKind.OS_FAULT, miss_latency_ns=self.sim.now - started
        )

    # ------------------------------------------------------------------
    def _os_fault(
        self, thread: Any, vaddr: int, walk: WalkResult, is_write: bool
    ) -> Generator[Any, Any, int]:
        if self.fault_handler is None:
            raise SimulationError(
                f"MMU {self.core_id}: page fault at {vaddr:#x} but no fault handler installed"
            )
        pfn = yield from self.fault_handler(thread, vaddr, walk, is_write)
        return pfn

    @staticmethod
    def _check_protection(decoded: Any, vpn: int, is_write: bool) -> None:
        if is_write and not decoded.writable:
            raise ProtectionFault(f"write to read-only page {vpn:#x}")

    # ------------------------------------------------------------------
    def invalidate(self, vpn: int) -> bool:
        return self.tlb.invalidate(vpn)

    def flush_tlb(self) -> None:
        self.tlb.flush()
