"""Four-level radix page table with LBA-augmented entries.

Structure mirrors x86-64 (PGD → PUD → PMD → PT, 512 entries each).  Every
table node occupies one synthetic *physical* page so entries have real
addresses: the SMU receives ``(PUD-entry addr, PMD-entry addr, PTE addr)``
with a page-miss request and later writes those addresses back, exactly as
in §III-C of the paper.

Upper-level entries (PGD/PUD/PMD) are encoded with the same bit layout as
leaf PTEs: PRESENT set, the PFN field holding the child table's page number,
and the LBA bit carrying Table I's "lower levels hold hardware-handled PTEs
awaiting OS metadata sync" meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import AddressError, PageTableError
from repro.mem.address import (
    ENTRIES_PER_TABLE,
    LEVELS,
    PAGE_SHIFT,
    VA_BITS,
    VA_LIMIT,
    level_index,
)
from repro.vm.pte import LBA_BIT, PRESENT_BIT, make_present_pte

#: Synthetic physical address region where page-table pages live, far above
#: any data frame (data frames are small integers).  Keeping table pages in
#: their own region simplifies bookkeeping while still giving every entry a
#: unique, stable physical address.
TABLE_REGION_BASE = 1 << 40

LEVEL_NAMES = {3: "PGD", 2: "PUD", 1: "PMD", 0: "PT"}


class _TableNode:
    """One 4 KB page-table page at a given level."""

    __slots__ = ("level", "base_addr", "entries", "children")

    def __init__(self, level: int, base_addr: int):
        self.level = level
        self.base_addr = base_addr
        self.entries: List[int] = [0] * ENTRIES_PER_TABLE
        #: index → child node, only for levels > 0.
        self.children: Dict[int, "_TableNode"] = {}

    def entry_addr(self, index: int) -> int:
        return self.base_addr + index * 8


@dataclass(slots=True)
class WalkResult:
    """Outcome of a page-table walk for one virtual address.

    ``pte`` is the raw leaf value (0 when no leaf table exists).  The three
    entry addresses are exactly the parameters an MMU sends to the SMU with
    a page-miss request (§III-C); they are ``None`` while the corresponding
    table has not been allocated.
    """

    vaddr: int
    pte: int
    pte_addr: Optional[int]
    pmd_entry_addr: Optional[int]
    pud_entry_addr: Optional[int]
    #: Number of table levels actually touched (for walk-latency models).
    levels_touched: int

    @property
    def complete(self) -> bool:
        """True when a leaf table exists for this address."""
        return self.pte_addr is not None


class PageTable:
    """One address space's 4-level page table."""

    def __init__(self, asid: int = 0):
        self.asid = asid
        self._next_table_page = 0
        self.root = self._new_node(LEVELS - 1)
        #: base_addr → node, for physical-address entry access by the SMU.
        self._nodes_by_base: Dict[int, _TableNode] = {self.root.base_addr: self.root}
        #: Counters for the §IV-B space-overhead discussion.
        self.table_pages_allocated = 1
        self.populated_ptes = 0
        #: Simulation-order sanitizer hook (set by SimSanitizer.watch);
        #: the OS and the SMU mutate the same table, which is exactly the
        #: shared-structure race the sanitizer watches for.
        self._sanitizer = None

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def _new_node(self, level: int) -> _TableNode:
        base = TABLE_REGION_BASE + ((self.asid << 28) + self._next_table_page) * (1 << PAGE_SHIFT)
        self._next_table_page += 1
        return _TableNode(level, base)

    def _child(self, node: _TableNode, index: int, create: bool) -> Optional[_TableNode]:
        child = node.children.get(index)
        if child is None and create:
            child = self._new_node(node.level - 1)
            node.children[index] = child
            self._nodes_by_base[child.base_addr] = child
            self.table_pages_allocated += 1
            # Upper entry: present, PFN field = child table page number.
            node.entries[index] = make_present_pte(
                child.base_addr >> PAGE_SHIFT, writable=True, user=True
            )
        return child

    # ------------------------------------------------------------------
    # walking
    # ------------------------------------------------------------------
    def walk(self, vaddr: int) -> WalkResult:
        """Walk the radix tree; never allocates tables.

        The four radix levels are unrolled with the index extraction
        inlined (one shift/mask per level): this runs once per TLB miss
        and is the VM layer's hottest function.
        """
        if not 0 <= vaddr < VA_LIMIT:
            raise AddressError(f"virtual address {vaddr:#x} outside {VA_BITS}-bit space")
        node = self.root  # PGD (level 3)
        pud_table = node.children.get((vaddr >> 39) & 511)
        if pud_table is None:
            return WalkResult(vaddr, 0, None, None, None, 1)
        index = (vaddr >> 30) & 511
        pud_entry_addr = pud_table.base_addr + index * 8
        pmd_table = pud_table.children.get(index)
        if pmd_table is None:
            return WalkResult(vaddr, 0, None, None, pud_entry_addr, 2)
        index = (vaddr >> 21) & 511
        pmd_entry_addr = pmd_table.base_addr + index * 8
        leaf = pmd_table.children.get(index)
        if leaf is None:
            return WalkResult(vaddr, 0, None, pmd_entry_addr, pud_entry_addr, 3)
        index = (vaddr >> 12) & 511
        return WalkResult(
            vaddr,
            leaf.entries[index],
            leaf.base_addr + index * 8,
            pmd_entry_addr,
            pud_entry_addr,
            4,
        )

    def get_pte(self, vaddr: int) -> int:
        """Raw leaf PTE value (0 when unmapped)."""
        return self.walk(vaddr).pte

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_pte(self, vaddr: int, value: int) -> WalkResult:
        """Write the leaf PTE, allocating intermediate tables as needed."""
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        if not 0 <= vaddr < VA_LIMIT:
            raise AddressError(f"virtual address {vaddr:#x} outside {VA_BITS}-bit space")
        # Unrolled like :meth:`walk`; the inline ``children.get`` probe
        # keeps the common already-allocated descent free of method calls.
        node = self.root
        index = (vaddr >> 39) & 511
        child = node.children.get(index)
        if child is None:
            child = self._child(node, index, True)
        index = (vaddr >> 30) & 511
        pud_entry_addr = child.base_addr + index * 8
        node, child = child, child.children.get(index)
        if child is None:
            child = self._child(node, index, True)
        index = (vaddr >> 21) & 511
        pmd_entry_addr = child.base_addr + index * 8
        node, child = child, child.children.get(index)
        if child is None:
            child = self._child(node, index, True)
        index = (vaddr >> 12) & 511
        entries = child.entries
        was_populated = entries[index] != 0
        entries[index] = value
        if value != 0 and not was_populated:
            self.populated_ptes += 1
        elif value == 0 and was_populated:
            self.populated_ptes -= 1
        return WalkResult(
            vaddr,
            value,
            child.base_addr + index * 8,
            pmd_entry_addr,
            pud_entry_addr,
            LEVELS,
        )

    def clear_pte(self, vaddr: int) -> int:
        """Zero the leaf PTE; returns the previous value (0 if none)."""
        walk = self.walk(vaddr)
        if not walk.complete:
            return 0
        previous = walk.pte
        if previous != 0:
            self.write_entry(walk.pte_addr, 0)
        return previous

    # ------------------------------------------------------------------
    # physical-address entry access (the SMU's interface)
    # ------------------------------------------------------------------
    def _locate(self, entry_addr: int) -> Tuple[_TableNode, int]:
        base = entry_addr & ~((1 << PAGE_SHIFT) - 1)
        node = self._nodes_by_base.get(base)
        if node is None:
            raise PageTableError(f"no page-table page at address {entry_addr:#x}")
        offset = entry_addr - base
        if offset % 8:
            raise PageTableError(f"misaligned entry address {entry_addr:#x}")
        return node, offset // 8

    def read_entry(self, entry_addr: int) -> int:
        if self._sanitizer is not None:
            self._sanitizer.note_read(self)
        node, index = self._locate(entry_addr)
        return node.entries[index]

    def write_entry(self, entry_addr: int, value: int) -> None:
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        node, index = self._locate(entry_addr)
        previous = node.entries[index]
        node.entries[index] = value
        if node.level == 0:
            if value != 0 and previous == 0:
                self.populated_ptes += 1
            elif value == 0 and previous != 0:
                self.populated_ptes -= 1

    def set_entry_lba_bit(self, entry_addr: int) -> None:
        """Set the LBA bit of an (upper-level) entry by address (§III-C)."""
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        node, index = self._locate(entry_addr)
        node.entries[index] |= LBA_BIT

    # ------------------------------------------------------------------
    # kpted scan support (§IV-C)
    # ------------------------------------------------------------------
    def mark_sync_pending(self, vaddr: int) -> None:
        """Set LBA bits in the PMD and PUD entries covering ``vaddr``."""
        node = self.root
        for level in range(LEVELS - 1, 0, -1):
            index = level_index(vaddr, level)
            child = node.children.get(index)
            if child is None:
                raise PageTableError(
                    f"mark_sync_pending({vaddr:#x}): level {LEVEL_NAMES[level]} missing"
                )
            if level in (2, 1):  # PUD and PMD entries carry the marker
                node.entries[index] |= LBA_BIT
            node = child

    def collect_pending_sync(self) -> "ScanReport":
        """One kpted scan pass: find PTEs in RESIDENT_PENDING_SYNC state.

        Implements the paper's pruned scan: a PUD/PMD entry whose LBA bit is
        clear prunes everything below it; set bits are cleared *before*
        descending (the paper's ordering guarantee).  Returns the found PTEs
        plus visit counts for cost accounting.
        """
        report = ScanReport()
        for pgd_index, pud_table in sorted(self.root.children.items()):
            for pud_index in list(pud_table.children.keys()):
                report.upper_visited += 1
                if not pud_table.entries[pud_index] & LBA_BIT:
                    continue
                pud_table.entries[pud_index] &= ~LBA_BIT
                pmd_table = pud_table.children[pud_index]
                for pmd_index in list(pmd_table.children.keys()):
                    report.upper_visited += 1
                    if not pmd_table.entries[pmd_index] & LBA_BIT:
                        continue
                    pmd_table.entries[pmd_index] &= ~LBA_BIT
                    leaf = pmd_table.children[pmd_index]
                    for pte_index in range(ENTRIES_PER_TABLE):
                        value = leaf.entries[pte_index]
                        report.ptes_visited += 1
                        if value & PRESENT_BIT and value & LBA_BIT:
                            vpn = self._vpn_of(pgd_index, pud_index, pmd_index, pte_index)
                            report.pending.append((vpn, leaf.entry_addr(pte_index)))
        return report

    @staticmethod
    def _vpn_of(pgd_index: int, pud_index: int, pmd_index: int, pte_index: int) -> int:
        return (
            (pgd_index << 27) | (pud_index << 18) | (pmd_index << 9) | pte_index
        )

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def iter_populated(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(vpn, pte_value)`` for every non-zero leaf entry."""
        for pgd_index, pud_table in sorted(self.root.children.items()):
            for pud_index, pmd_table in sorted(pud_table.children.items()):
                for pmd_index, leaf in sorted(pmd_table.children.items()):
                    for pte_index in range(ENTRIES_PER_TABLE):
                        value = leaf.entries[pte_index]
                        if value != 0:
                            yield self._vpn_of(
                                pgd_index, pud_index, pmd_index, pte_index
                            ), value

    def resident_pages(self) -> int:
        """Number of present leaf PTEs."""
        return sum(1 for _, value in self.iter_populated() if value & PRESENT_BIT)


class ScanReport:
    """Result of one kpted scan pass over a page table."""

    def __init__(self) -> None:
        self.pending: List[Tuple[int, int]] = []  # (vpn, pte_addr)
        self.upper_visited = 0
        self.ptes_visited = 0

    @property
    def found(self) -> int:
        return len(self.pending)
