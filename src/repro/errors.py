"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator-originated failures without masking ordinary
Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. time travel)."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range or inconsistent."""


class AddressError(ReproError):
    """A virtual or physical address is malformed or out of range."""


class PageTableError(ReproError):
    """Illegal page-table manipulation (double map, unmap of absent page)."""

class ProtectionFault(ReproError):
    """An access violated the protection bits of a present mapping."""


class StorageError(ReproError):
    """Illegal storage-device interaction (bad LBA, bad queue state)."""


class OutOfMemoryError(ReproError):
    """The physical frame pool is exhausted and reclaim cannot make progress."""


class KernelError(ReproError):
    """The OS model reached an inconsistent state."""


class SegmentationFault(KernelError):
    """An access hit no VMA — the OS would deliver SIGSEGV."""


class IoError(KernelError):
    """An unrecoverable storage error was delivered to the faulting thread.

    Raised when every bounded retry of a page-in read (or an ``msync``
    writeback) completed with an NVMe error status — the simulation
    analogue of SIGBUS / ``msync`` returning ``EIO``.
    """


class InvariantViolation(ReproError):
    """A post-run invariant check found leaked or inconsistent state."""


class SmuError(ReproError):
    """The storage management unit model reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload driver was configured or used incorrectly."""
