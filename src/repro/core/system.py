"""System builder: assemble a simulated machine in OSDP / SWDP / HWDP mode.

This is the package's main entry point::

    from repro.config import SystemConfig, PagingMode
    from repro.core.system import build_system

    system = build_system(SystemConfig(mode=PagingMode.HWDP))
    process = system.create_process("app")
    thread = system.workload_thread(process, index=0)
    ... spawn workload coroutines ...
    system.run([...])

Mode differences (paper Figure 10):

* **OSDP** — vanilla kernel; no SMU, no free-page queue, no kpted/kpoold
  (kswapd still runs, as on stock Linux); the fast-mmap flag is ignored.
* **SWDP** — the paper's software-emulated SMU (§VI-A): LBA-augmented PTEs,
  the emulation path in the fault handler, kpted + kpoold running.
* **HWDP** — the proposal: the SMU attached to every MMU, kpted + kpoold
  running, exceptions only for fallback cases.

Thread placement matches the paper's pinning: workload thread *i* runs on
physical core *i*'s first SMT lane; the kernel daemons (kpted, kpoold, and
kswapd — the latter in every mode) take the second lanes of the last
physical cores, so an 8-thread run contends with them — exactly the effect
the paper reports at 8 threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.config import PagingMode, SystemConfig
from repro.core.smu import Smu, SmuComplex
from repro.cpu.core import CpuComplex
from repro.cpu.thread import ThreadContext
from repro.errors import ConfigError, SimulationError
from repro.obs.metrics import system_metrics
from repro.obs.runtime import observe_system
from repro.os.kernel import Kernel
from repro.os.kthreads import Kpoold, Kpted, Kswapd
from repro.os.process import ProcessContext
from repro.sim import Process, RngStreams, Simulator, spawn
from repro.storage.nvme import NVMeDevice


@dataclass
class System:
    """A fully wired simulated machine."""

    sim: Simulator
    config: SystemConfig
    rng: RngStreams
    cpu_complex: CpuComplex
    device: NVMeDevice
    kernel: Kernel
    #: Socket 0's SMU (the common single-socket case); the full set lives
    #: in :attr:`smu_complex`.
    smu: Optional[Smu] = None
    smu_complex: Optional[SmuComplex] = None
    kpted: Optional[Kpted] = None
    kpoold: Optional[Kpoold] = None
    kswapd: Optional[Kswapd] = None
    #: Present only when the config carries a fault plan.
    fault_injector: Optional[Any] = None
    #: Unified metrics registry over every component's counters (see
    #: :mod:`repro.obs.metrics`); populated by :func:`build_system`.
    metrics: Optional[Any] = None
    kthread_threads: List[ThreadContext] = field(default_factory=list)
    _kthread_processes: List[Process] = field(default_factory=list)

    # ------------------------------------------------------------------
    def create_process(self, name: str = "app") -> ProcessContext:
        return self.kernel.create_process(name)

    def workload_thread(
        self, process: ProcessContext, index: int, name: Optional[str] = None, lane: int = 0
    ) -> ThreadContext:
        """Thread pinned to physical core ``index``, SMT lane ``lane``."""
        cpu = self.config.cpu
        if not 0 <= index < cpu.physical_cores:
            raise ConfigError(f"no physical core {index}")
        if not 0 <= lane < cpu.smt_ways:
            raise ConfigError(f"no SMT lane {lane}")
        core = self.cpu_complex.logical_core(index * cpu.smt_ways + lane)
        return ThreadContext(
            self.sim, name or f"worker-{index}.{lane}", process, core, cpu
        )

    # ------------------------------------------------------------------
    def run(
        self,
        processes: Sequence[Process],
        max_events: Optional[int] = None,
        stop_daemons: bool = True,
    ) -> float:
        """Run until every given workload process finishes; returns the
        finish time in ns.  Kernel daemons are stopped afterwards unless
        ``stop_daemons=False`` (multi-phase workloads that will run again
        on the same machine, e.g. a shared warmup before the measured
        phase).

        Completion is tracked with each process's synchronous
        ``on_finish`` countdown hook — no per-event ``all(...)`` scan, no
        extra events, so the dispatch sequence is identical to stepping
        manually until the last process finishes.
        """
        sim = self.sim
        remaining = 0

        def count_down(_process: Process) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                sim.stop()

        for process in processes:
            if not process.finished and process.on_finish is not count_down:
                remaining += 1
                process.on_finish = count_down
        if remaining:
            if max_events is None:
                sim.run()
                if remaining:
                    raise SimulationError(
                        "event queue drained but workload processes have not "
                        "finished — a wait was lost"
                    )
            else:
                dispatched = 0
                while remaining:
                    if dispatched >= max_events:
                        raise SimulationError(
                            f"workload did not finish within {max_events} events"
                        )
                    if not sim.step():
                        raise SimulationError(
                            "event queue drained but workload processes have "
                            "not finished — a wait was lost"
                        )
                    dispatched += 1
        finish = sim.now
        if stop_daemons:
            self.kernel.stop()
        return finish

    def spawn(self, body: Any, name: str = "workload") -> Process:
        return spawn(self.sim, body, name)


def build_system(config: SystemConfig, namespace_blocks: int = 1 << 24) -> System:
    """Construct a machine per ``config`` (see module docstring)."""
    sim = Simulator()
    rng = RngStreams(config.master_seed)
    cpu_complex = CpuComplex(sim, config.cpu)
    device = NVMeDevice(sim, config.device, rng.stream("device"))
    kernel = Kernel(sim, config, cpu_complex, device, namespace_blocks)
    if config.fault_plan is not None:
        # Imported lazily so fault-free builds never touch the faults
        # package; the injector draws from its own named stream, keeping
        # device/workload RNG sequences identical with or without a plan.
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(config.fault_plan, rng.stream("fault-injector"))
        device.fault_injector = injector
        kernel.fault_injector = injector
    else:
        injector = None
    system = System(
        sim=sim,
        config=config,
        rng=rng,
        cpu_complex=cpu_complex,
        device=device,
        kernel=kernel,
        fault_injector=injector,
    )

    if config.mode is PagingMode.HWDP:
        smus = [
            Smu(sim, config, kernel, socket_id=socket)
            for socket in range(config.sockets)
        ]
        complex_ = SmuComplex(smus)
        # The primary device attaches to socket 0's SMU; further devices
        # (tests, multi-device setups) install on whichever SMU serves them.
        device_id = smus[0].host.install_device(device, nsid=1)
        if device_id != 0:
            raise ConfigError("first installed device must get ID 0")
        kernel.smu = complex_
        system.smu = smus[0]
        system.smu_complex = complex_
        for core in cpu_complex.logical_cores:
            core.mmu.smu = complex_

    if config.mode is not PagingMode.OSDP:
        _boot_free_page_queue(kernel)
    _start_kernel_daemons(system)
    system.metrics = system_metrics(system)
    # Attach any process-global observation (the experiments CLI's
    # --trace/--metrics); a single no-op check when none is active.
    observe_system(system)
    return system


def _boot_free_page_queue(kernel: Kernel) -> None:
    """Initial queue fill at boot (before any workload runs)."""
    for queue in kernel.iter_free_queues():
        frames = kernel.frame_pool.alloc_batch(queue.depth)
        queue.refill(frames)
        queue.prefetch_now()


def _start_kernel_daemons(system: System) -> None:
    config = system.config
    cpu = config.cpu
    kernel = system.kernel
    daemon_process = kernel.create_process("kernel-daemons")

    def daemon_core(slot: int) -> int:
        """Daemon *slot* gets the second SMT lane of the slot-th core from
        the end (or the core itself without SMT)."""
        physical = cpu.physical_cores - 1 - slot
        if cpu.smt_ways >= 2:
            return physical * cpu.smt_ways + 1
        return physical

    def start(name: str, slot: int, daemon_class):
        thread = ThreadContext(
            system.sim,
            name,
            daemon_process,
            system.cpu_complex.logical_core(daemon_core(slot)),
            cpu,
            kernel_context=True,
        )
        daemon = daemon_class(kernel, thread)
        system.kthread_threads.append(thread)
        system._kthread_processes.append(spawn(system.sim, daemon.run(), name))
        return daemon

    # kswapd runs in every mode (vanilla Linux behaviour).
    if config.control_plane.kswapd_enabled:
        system.kswapd = start("kswapd", 2, Kswapd)

    if config.mode is PagingMode.OSDP:
        return
    system.kpted = start("kpted", 0, Kpted)
    if config.control_plane.kpoold_enabled:
        system.kpoold = start("kpoold", 1, Kpoold)
