"""Page-Miss Status Holding Registers (PMSHR, paper §III-C).

A fully-associative CAM keyed by PTE address — the unique identifier of a
virtual page — that coalesces duplicate page-miss requests exactly like an
MSHR coalesces cache misses.  The entry count bounds the SMU's concurrent
outstanding I/Os (the paper picks 32 empirically).

The same structure backs the paper's software-emulated SMU, where it lives
in a memory table instead of registers (and therefore suffers cache-line
contention, modelled by the SWDP cost table, not here).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SmuError
from repro.sim import Completion, Counter, Signal, Simulator


class PmshrEntry:
    """One outstanding page miss."""

    __slots__ = (
        "index",
        "pte_addr",
        "pmd_entry_addr",
        "pud_entry_addr",
        "device_id",
        "lba",
        "pfn",
        "completion",
        "allocated_at",
    )

    def __init__(
        self,
        index: int,
        pte_addr: int,
        pmd_entry_addr: Optional[int],
        pud_entry_addr: Optional[int],
        device_id: int,
        lba: int,
        sim: Simulator,
    ):
        self.index = index
        self.pte_addr = pte_addr
        self.pmd_entry_addr = pmd_entry_addr
        self.pud_entry_addr = pud_entry_addr
        self.device_id = device_id
        self.lba = lba
        #: Filled in by the free-page fetcher (§III-C step 4).
        self.pfn: Optional[int] = None
        #: Fired with the final PFN when the miss completes — the paper's
        #: "broadcasts a completion message with the PTE address and value".
        self.completion = Completion(sim, f"pmshr-{index}")
        self.allocated_at = sim.now


class Pmshr:
    """The CAM: lookup by PTE address, allocate, release."""

    def __init__(self, sim: Simulator, entries: int):
        if entries < 1:
            raise SmuError("PMSHR needs at least one entry")
        self.sim = sim
        self.capacity = entries
        self._by_pte_addr: Dict[int, PmshrEntry] = {}
        self._free_indices = list(range(entries))[::-1]
        #: Broadcast when a slot frees up (a full PMSHR retries on this).
        self.slot_freed = Signal(sim, "pmshr-slot-freed")
        self.stats = Counter()
        #: Simulation-order sanitizer hook (set by SimSanitizer.watch).
        self._sanitizer = None

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self._by_pte_addr)

    @property
    def is_full(self) -> bool:
        return len(self._by_pte_addr) >= self.capacity

    # ------------------------------------------------------------------
    def lookup(self, pte_addr: int) -> Optional[PmshrEntry]:
        """CAM search — a hit means an identical miss is already in flight."""
        if self._sanitizer is not None:
            self._sanitizer.note_read(self)
        entry = self._by_pte_addr.get(pte_addr)
        if entry is not None:
            self.stats.add("coalesced")
        return entry

    def allocate(
        self,
        pte_addr: int,
        pmd_entry_addr: Optional[int],
        pud_entry_addr: Optional[int],
        device_id: int,
        lba: int,
    ) -> Optional[PmshrEntry]:
        """Claim a free entry; returns None when the CAM is full."""
        if pte_addr in self._by_pte_addr:
            raise SmuError(f"PMSHR double allocation for PTE {pte_addr:#x}")
        if not self._free_indices:
            self.stats.add("full")
            return None
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        index = self._free_indices.pop()
        entry = PmshrEntry(
            index, pte_addr, pmd_entry_addr, pud_entry_addr, device_id, lba, self.sim
        )
        self._by_pte_addr[pte_addr] = entry
        self.stats.add("allocated")
        sink = self.sim.trace
        if sink is not None:
            sink.instant(
                "pmshr.allocate",
                index=index,
                pte_addr=f"{pte_addr:#x}",
                lba=lba,
                outstanding=len(self._by_pte_addr),
            )
        return entry

    def lookup_or_allocate(
        self,
        pte_addr: int,
        pmd_entry_addr: Optional[int],
        pud_entry_addr: Optional[int],
        device_id: int,
        lba: int,
    ) -> Tuple[Optional[PmshrEntry], bool]:
        """Atomic CAM probe-then-claim; returns ``(entry, created)``.

        ``(existing, False)`` on a hit, ``(new_entry, True)`` after
        claiming a free slot, ``(None, False)`` when the CAM is full.

        This is what the hardware does in one CAM cycle.  Split
        ``lookup()`` + ``allocate()`` calls record two sanitizer accesses
        from two source sites, so two same-instant misses to one page
        read as a lookup-read vs allocate-write tie-break hazard even
        though the outcome (exactly one allocator, the other coalesced)
        is order-independent; the fused form is a single access from a
        single site and cannot trip that pair.
        """
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        entry = self._by_pte_addr.get(pte_addr)
        if entry is not None:
            self.stats.add("coalesced")
            return entry, False
        if not self._free_indices:
            self.stats.add("full")
            return None, False
        index = self._free_indices.pop()
        entry = PmshrEntry(
            index, pte_addr, pmd_entry_addr, pud_entry_addr, device_id, lba, self.sim
        )
        self._by_pte_addr[pte_addr] = entry
        self.stats.add("allocated")
        sink = self.sim.trace
        if sink is not None:
            sink.instant(
                "pmshr.allocate",
                index=index,
                pte_addr=f"{pte_addr:#x}",
                lba=lba,
                outstanding=len(self._by_pte_addr),
            )
        return entry, True

    def release(self, entry: PmshrEntry, pfn: Optional[int]) -> None:
        """Broadcast completion (PFN, or None for failure) and free the slot."""
        stored = self._by_pte_addr.pop(entry.pte_addr, None)
        if stored is not entry:
            raise SmuError(f"PMSHR release of unknown entry {entry.pte_addr:#x}")
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        self._free_indices.append(entry.index)
        sink = self.sim.trace
        if sink is not None:
            sink.instant(
                "pmshr.release",
                index=entry.index,
                pte_addr=f"{entry.pte_addr:#x}",
                pfn=pfn,
                outstanding=len(self._by_pte_addr),
            )
        entry.completion.fire(pfn)
        self.stats.add("released")
        self.slot_freed.fire()
