"""SMU prefetchers — the paper's §V "Prefetching Support", pluggable.

The paper leaves prefetching in the SMU as future work; this module
implements the natural designs within the published architecture behind
one :class:`Prefetcher` interface (selected via ``SmuConfig.prefetcher``):

* the page-miss handler calls :meth:`Prefetcher.observe_demand_miss` for
  every demand miss it accepts; the policy updates its predictor and may
  emit candidate *PTE addresses* to prefetch;
* for each candidate that is non-resident LBA-augmented, the shared issue
  pipeline allocates a PMSHR entry and a free frame and issues the read;
* completions reuse the normal machinery: the page-table updater installs
  the frame with the LBA bit kept set, and the PMSHR broadcast wakes any
  demand miss that arrived meanwhile (coalescing makes prefetch hits free).

Prefetches never cross a leaf-table boundary (the hardware only has entry
*addresses*, and the next table's address is unknown), never consume the
last free pages, and are dropped — not queued — when the PMSHR is busy.
A dropped or failed prefetch returns its frame to the free-page queue it
was popped from (falling back to the global pool, explicitly counted,
only if that queue refilled to capacity meanwhile) so per-core queue
occupancy stays symmetric under pressure.

Shipped policies:

* ``sequential`` — the original ascending-adjacent-PTE stream detector;
* ``stride`` — direction-aware: adjacent strides (|Δ| = one PTE) in
  either direction trigger immediately, larger strides once repeated;
* ``markov`` — a bounded first-order Markov predictor over the demand
  miss stream, prefetching the most frequent successors of each PTE.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import SmuError
from repro.mem.address import PAGE_SIZE
from repro.sim import Counter, Delay, WaitSignal, spawn
from repro.vm.pte import PteStatus, decode_pte, is_anon_first_touch

#: Bytes per leaf page-table entry.
_PTE_SIZE = 8


class Prefetcher:
    """Base class: predictor hook points + the shared issue pipeline."""

    #: Registry name (set by the :func:`register_prefetcher` decorator).
    policy_name: str = "?"

    def __init__(self, smu: Any, degree: int):
        self.smu = smu
        self.degree = degree
        self._last_demand_pte_addr: Optional[int] = None
        self.stats = Counter()

    # ------------------------------------------------------------------
    def observe_demand_miss(
        self, walk: Any, decoded: Any, page_table: Any, core_id: int = 0
    ) -> None:
        """Called by the SMU on every demand miss it accepts."""
        previous = self._last_demand_pte_addr
        self._last_demand_pte_addr = walk.pte_addr
        self._record(previous, walk, decoded)
        if self.degree <= 0:
            return
        targets = self._targets(previous, walk)
        if targets is None:
            return
        self._issue_prefetches(walk, page_table, core_id, targets)

    # -- policy hook points --------------------------------------------
    def _record(self, previous: Optional[int], walk: Any, decoded: Any) -> None:
        """Train the predictor on one miss (runs even when degree is 0)."""

    def _targets(self, previous: Optional[int], walk: Any) -> Optional[Iterator[int]]:
        """Candidate PTE addresses to prefetch, or None for no trigger.

        Returned iterators are consumed lazily: a candidate after a
        PMSHR-full or no-frames drop is never generated, so per-candidate
        stats (e.g. table-boundary stops) reflect only inspected entries.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared issue pipeline
    # ------------------------------------------------------------------
    def _issue_prefetches(
        self, walk: Any, page_table: Any, core_id: int, targets: Iterator[int]
    ) -> None:
        smu = self.smu
        free_queue = smu.kernel.free_queue_for(core_id)
        for target_addr in targets:
            value = page_table.read_entry(target_addr)
            decoded = decode_pte(value)
            if decoded.status is not PteStatus.NON_RESIDENT_HW:
                continue
            if is_anon_first_touch(decoded):
                continue  # nothing to read for first-touch anonymous pages
            if smu.pmshr.lookup(target_addr) is not None:
                continue  # already being fetched (demand or prefetch)
            if smu.pmshr.is_full:
                self.stats.add("dropped_pmshr_full")
                break
            # Keep a reserve so prefetching never starves demand misses.
            if free_queue.occupancy <= 2:
                self.stats.add("dropped_no_frames")
                break
            pop = free_queue.pop()
            if pop.empty:
                self.stats.add("dropped_no_frames")
                break
            entry = smu.pmshr.allocate(
                target_addr,
                walk.pmd_entry_addr,
                walk.pud_entry_addr,
                decoded.device_id,
                decoded.lba,
            )
            entry.pfn = pop.pfn
            self.stats.add("issued")
            spawn(
                smu.sim,
                self._prefetch_pipeline(entry, decoded, pop.pfn, page_table, free_queue),
                f"smu-readahead-{entry.index}",
            )

    def _return_frame(self, free_queue: Any, pfn: int) -> None:
        """Undo a pop: the dropped prefetch's frame goes back where it
        came from, keeping per-core queue occupancy symmetric."""
        if free_queue.give_back(pfn):
            self.stats.add("frames_returned_queue")
        else:
            # The producer refilled the queue to capacity meanwhile; hand
            # the frame to the global pool and count the transfer.
            self.stats.add("frames_returned_pool")
            self.smu.kernel.frame_pool.free(pfn)

    def _prefetch_pipeline(self, entry, decoded, pfn: int, page_table, free_queue):
        """Background hardware activity for one prefetch."""
        smu = self.smu
        qp = smu.host.descriptor(decoded.device_id).qp
        if qp.occupied >= qp.depth:
            # Prefetches never queue behind a full SQ — demand misses own
            # the backpressure path; a speculative read is simply dropped.
            self.stats.add("dropped_sq_full")
            self._return_frame(free_queue, pfn)
            smu.pmshr.release(entry, None)
            return
        qp.reserved += 1
        yield Delay(smu.host.issue_latency_ns)
        io_done = smu._register_io(entry)
        smu.host.issue_read(decoded.device_id, decoded.lba, pfn, entry.index, claimed=True)
        yield WaitSignal(io_done)
        command = io_done.value
        if command is not None and not command.ok:
            # Speculative reads are never retried: return the frame and
            # invalidate the entry so a later demand miss refetches.
            self.stats.add("io_errors")
            smu.kernel.counters.add("smu.prefetch_io_errors")
            self._return_frame(free_queue, pfn)
            smu.pmshr.release(entry, None)
            return
        yield Delay(
            smu.config.cpu.cycles_to_ns(
                smu.config.smu.completion_unit_cycles + smu.config.smu.entry_update_cycles
            )
        )
        smu.updater.apply(
            page_table, entry.pte_addr, entry.pmd_entry_addr, entry.pud_entry_addr, pfn
        )
        smu.kernel.counters.add("install.hw_pending")
        smu.kernel.counters.add("smu.prefetched_pages")
        self.stats.add("completed")
        smu.pmshr.release(entry, pfn)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_PREFETCHERS: Dict[str, Callable[[Any, int], Prefetcher]] = {}


def register_prefetcher(name: str):
    """Class decorator: make a prefetcher constructible by name."""

    def decorator(cls):
        if name in _PREFETCHERS:
            raise SmuError(f"prefetcher {name!r} registered twice")
        cls.policy_name = name
        _PREFETCHERS[name] = cls
        return cls

    return decorator


def prefetcher_names() -> List[str]:
    """Every registered prefetcher name, sorted."""
    return sorted(_PREFETCHERS)


def create_prefetcher(name: str, smu: Any, degree: int) -> Prefetcher:
    """Instantiate a registered prefetcher (``SmuConfig.prefetcher``)."""
    factory = _PREFETCHERS.get(name)
    if factory is None:
        raise SmuError(
            f"unknown prefetcher {name!r}; known: {', '.join(sorted(_PREFETCHERS))}"
        )
    return factory(smu, degree)


# ----------------------------------------------------------------------
# sequential readahead (the original ascending stream detector)
# ----------------------------------------------------------------------
@register_prefetcher("sequential")
class SequentialReadahead(Prefetcher):
    """The SMU's original readahead block: ascending adjacent PTEs only.

    Two misses on addresses exactly one PTE apart (ascending) flag a
    sequential stream; the next ``degree`` PTEs of the same leaf table are
    prefetched.  Kept bit-for-bit compatible with the pre-plugin
    behaviour — this is the default policy.
    """

    def _targets(self, previous: Optional[int], walk: Any) -> Optional[Iterator[int]]:
        if previous is None or walk.pte_addr - previous != _PTE_SIZE:
            return None
        self.stats.add("sequential_detected")
        return self._sequential_targets(walk)

    def _sequential_targets(self, walk: Any) -> Iterator[int]:
        table_end = (walk.pte_addr & ~(PAGE_SIZE - 1)) + PAGE_SIZE
        for step in range(1, self.degree + 1):
            target_addr = walk.pte_addr + _PTE_SIZE * step
            if target_addr >= table_end:
                self.stats.add("stopped_at_table_boundary")
                return
            yield target_addr


# ----------------------------------------------------------------------
# stride prefetcher (direction-aware; fixes the descending-scan gap)
# ----------------------------------------------------------------------
@register_prefetcher("stride")
class StridePrefetcher(Prefetcher):
    """Direction-aware stride detection over the demand-miss PTE stream.

    Adjacent strides (|Δ| = one PTE, ascending *or* descending) trigger
    immediately, matching the sequential detector's latency while also
    covering reverse file iteration.  Larger strides must repeat once
    (two equal deltas) before the prefetcher trusts them.  Targets follow
    the detected stride and stop at the leaf-table boundary in either
    direction.
    """

    #: Largest |Δ| considered a stride, in PTEs (beyond this it's a jump).
    max_stride_ptes = 64

    def __init__(self, smu: Any, degree: int):
        super().__init__(smu, degree)
        self._last_delta: Optional[int] = None

    def _targets(self, previous: Optional[int], walk: Any) -> Optional[Iterator[int]]:
        if previous is None:
            return None
        delta = walk.pte_addr - previous
        confirmed = delta == self._last_delta
        self._last_delta = delta
        if delta == 0 or delta % _PTE_SIZE != 0:
            return None
        if abs(delta) > _PTE_SIZE * self.max_stride_ptes:
            return None
        if abs(delta) != _PTE_SIZE and not confirmed:
            return None  # larger strides need one repetition
        self.stats.add("stride_detected")
        if delta < 0:
            self.stats.add("descending_detected")
        return self._stride_targets(walk, delta)

    def _stride_targets(self, walk: Any, delta: int) -> Iterator[int]:
        table_start = walk.pte_addr & ~(PAGE_SIZE - 1)
        table_end = table_start + PAGE_SIZE
        for step in range(1, self.degree + 1):
            target_addr = walk.pte_addr + delta * step
            if target_addr < table_start or target_addr >= table_end:
                self.stats.add("stopped_at_table_boundary")
                return
            yield target_addr


# ----------------------------------------------------------------------
# Markov prefetcher over the miss stream
# ----------------------------------------------------------------------
@register_prefetcher("markov")
class MarkovPrefetcher(Prefetcher):
    """First-order Markov prediction over demand-miss PTE addresses.

    A bounded transition table records, for each miss address, how often
    each successor followed it; a repeated miss then prefetches its most
    frequent successors (count-descending, insertion order on ties).
    Cross-table successors are dropped — the hardware only trusts entry
    addresses within the current leaf table — and counted.
    """

    #: Bounded predictor state: miss addresses tracked (FIFO eviction).
    max_states = 1024
    #: Successors remembered per miss address.
    max_successors = 8

    def __init__(self, smu: Any, degree: int):
        super().__init__(smu, degree)
        self._transitions: "OrderedDict[int, OrderedDict[int, int]]" = OrderedDict()

    def _record(self, previous: Optional[int], walk: Any, decoded: Any) -> None:
        if previous is None or previous == walk.pte_addr:
            return
        successors = self._transitions.get(previous)
        if successors is None:
            if len(self._transitions) >= self.max_states:
                self._transitions.popitem(last=False)
            successors = OrderedDict()
            self._transitions[previous] = successors
        successors[walk.pte_addr] = successors.get(walk.pte_addr, 0) + 1
        if len(successors) > self.max_successors:
            # Drop the least-frequent successor (oldest on ties).
            weakest = None
            weakest_count = None
            for addr, count in successors.items():
                if weakest_count is None or count < weakest_count:
                    weakest, weakest_count = addr, count
            del successors[weakest]

    def _targets(self, previous: Optional[int], walk: Any) -> Optional[Iterator[int]]:
        predicted = self.predict(walk.pte_addr)
        if not predicted:
            return None
        self.stats.add("markov_predicted")
        return self._markov_targets(walk, predicted)

    def predict(self, pte_addr: int) -> List[int]:
        """Successor addresses of ``pte_addr``, most frequent first."""
        successors = self._transitions.get(pte_addr)
        if not successors:
            return []
        # Stable sort: equal counts keep first-observed order.
        ranked = sorted(successors.items(), key=lambda item: -item[1])
        return [addr for addr, _count in ranked]

    def _markov_targets(self, walk: Any, candidates: List[int]) -> Iterator[int]:
        table_start = walk.pte_addr & ~(PAGE_SIZE - 1)
        table_end = table_start + PAGE_SIZE
        emitted = 0
        for target_addr in candidates:
            if emitted >= self.degree:
                return
            if target_addr < table_start or target_addr >= table_end:
                self.stats.add("dropped_cross_table")
                continue
            emitted += 1
            yield target_addr
