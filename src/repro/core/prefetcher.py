"""SMU sequential readahead — the paper's §V "Prefetching Support".

The paper leaves prefetching in the SMU as future work; this module
implements the natural design within the published architecture:

* the page-miss handler remembers the PTE address of the previous demand
  miss; two misses on *adjacent* PTEs (addresses 8 bytes apart, i.e.
  consecutive virtual pages in one leaf table) flag a sequential stream;
* on a sequential miss, the prefetcher walks the next ``degree`` PTEs of
  the same leaf table (pure hardware: contiguous entry addresses), and for
  each one that is non-resident LBA-augmented it allocates a PMSHR entry
  and a free frame and issues the read;
* completions reuse the normal machinery: the page-table updater installs
  the frame with the LBA bit kept set, and the PMSHR broadcast wakes any
  demand miss that arrived meanwhile (coalescing makes prefetch hits free).

Prefetches never cross a leaf-table boundary (the hardware only has entry
*addresses*, and the next table's address is unknown), never consume the
last free pages, and are dropped — not queued — when the PMSHR is busy.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mem.address import PAGE_SIZE
from repro.sim import Counter, Delay, WaitSignal, spawn
from repro.vm.pte import PteStatus, decode_pte, is_anon_first_touch


class SequentialReadahead:
    """The SMU's optional readahead block."""

    def __init__(self, smu: Any, degree: int):
        self.smu = smu
        self.degree = degree
        self._last_demand_pte_addr: Optional[int] = None
        self.stats = Counter()

    # ------------------------------------------------------------------
    def observe_demand_miss(
        self, walk: Any, decoded: Any, page_table: Any, core_id: int = 0
    ) -> None:
        """Called by the SMU on every demand miss it accepts."""
        previous = self._last_demand_pte_addr
        self._last_demand_pte_addr = walk.pte_addr
        if self.degree <= 0:
            return
        if previous is None or walk.pte_addr - previous != 8:
            return
        self.stats.add("sequential_detected")
        self._issue_prefetches(walk, page_table, core_id)

    # ------------------------------------------------------------------
    def _issue_prefetches(self, walk: Any, page_table: Any, core_id: int) -> None:
        smu = self.smu
        free_queue = smu.kernel.free_queue_for(core_id)
        table_end = (walk.pte_addr & ~(PAGE_SIZE - 1)) + PAGE_SIZE
        for step in range(1, self.degree + 1):
            target_addr = walk.pte_addr + 8 * step
            if target_addr >= table_end:
                self.stats.add("stopped_at_table_boundary")
                break
            value = page_table.read_entry(target_addr)
            decoded = decode_pte(value)
            if decoded.status is not PteStatus.NON_RESIDENT_HW:
                continue
            if is_anon_first_touch(decoded):
                continue  # nothing to read for first-touch anonymous pages
            if smu.pmshr.lookup(target_addr) is not None:
                continue  # already being fetched (demand or prefetch)
            if smu.pmshr.is_full:
                self.stats.add("dropped_pmshr_full")
                break
            # Keep a reserve so prefetching never starves demand misses.
            if free_queue.occupancy <= 2:
                self.stats.add("dropped_no_frames")
                break
            pop = free_queue.pop()
            if pop.empty:
                self.stats.add("dropped_no_frames")
                break
            entry = smu.pmshr.allocate(
                target_addr,
                walk.pmd_entry_addr,
                walk.pud_entry_addr,
                decoded.device_id,
                decoded.lba,
            )
            entry.pfn = pop.pfn
            self.stats.add("issued")
            spawn(
                smu.sim,
                self._prefetch_pipeline(entry, decoded, pop.pfn, page_table),
                f"smu-readahead-{entry.index}",
            )

    def _prefetch_pipeline(self, entry, decoded, pfn: int, page_table):
        """Background hardware activity for one prefetch."""
        smu = self.smu
        qp = smu.host.descriptor(decoded.device_id).qp
        if qp.occupied >= qp.depth:
            # Prefetches never queue behind a full SQ — demand misses own
            # the backpressure path; a speculative read is simply dropped.
            self.stats.add("dropped_sq_full")
            smu.kernel.frame_pool.free(pfn)
            smu.pmshr.release(entry, None)
            return
        qp.reserved += 1
        yield Delay(smu.host.issue_latency_ns)
        io_done = smu._register_io(entry)
        smu.host.issue_read(decoded.device_id, decoded.lba, pfn, entry.index, claimed=True)
        yield WaitSignal(io_done)
        command = io_done.value
        if command is not None and not command.ok:
            # Speculative reads are never retried: return the frame and
            # invalidate the entry so a later demand miss refetches.
            self.stats.add("io_errors")
            smu.kernel.counters.add("smu.prefetch_io_errors")
            smu.kernel.frame_pool.free(pfn)
            smu.pmshr.release(entry, None)
            return
        yield Delay(
            smu.config.cpu.cycles_to_ns(
                smu.config.smu.completion_unit_cycles + smu.config.smu.entry_update_cycles
            )
        )
        smu.updater.apply(
            page_table, entry.pte_addr, entry.pmd_entry_addr, entry.pud_entry_addr, pfn
        )
        smu.kernel.counters.add("install.hw_pending")
        smu.kernel.counters.add("smu.prefetched_pages")
        self.stats.add("completed")
        smu.pmshr.release(entry, pfn)
