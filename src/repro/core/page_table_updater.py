"""The SMU's page-table updater (paper §III-C step 6).

After the device I/O completes, the hardware writes back, *by physical
address*, the three entries it was given with the miss request:

* the PTE — LBA field replaced by the allocated PFN, PRESENT set, and the
  LBA bit deliberately left set (so kpted knows metadata is pending);
* the PMD and PUD entries — LBA bits set (Table I's "lower levels hold
  hardware-handled PTEs" marker).

The three read-modify-writes rarely miss the LLC; the paper charges 97
cycles total, accounted by the SMU pipeline (not here).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SmuError
from repro.vm.page_table import PageTable
from repro.vm.pte import hw_install_frame


class PageTableUpdater:
    """Stateless hardware block: applies the §III-C entry updates."""

    def __init__(self) -> None:
        self.updates_applied = 0

    def apply(
        self,
        page_table: PageTable,
        pte_addr: int,
        pmd_entry_addr: Optional[int],
        pud_entry_addr: Optional[int],
        pfn: int,
    ) -> int:
        """Perform the writes; returns the new PTE value."""
        if pmd_entry_addr is None or pud_entry_addr is None:
            raise SmuError(
                "page-miss request carried incomplete entry addresses "
                "(leaf table existed, so PMD/PUD entries must too)"
            )
        current = page_table.read_entry(pte_addr)
        installed = hw_install_frame(current, pfn)
        page_table.write_entry(pte_addr, installed)
        page_table.set_entry_lba_bit(pmd_entry_addr)
        page_table.set_entry_lba_bit(pud_entry_addr)
        self.updates_applied += 1
        return installed
