"""The SMU's free-page queue and prefetch buffer (paper §III-C).

A circular queue *in memory* holding ``<PFN, DMA address>`` pairs with a
single producer (the kernel's refill routine / kpoold) and a single consumer
(the SMU's free-page fetcher), so no synchronisation is needed.  The
hardware hides the memory round-trip of reading queue entries by eagerly
prefetching a few entries into an SRAM buffer inside the SMU; a pop that
hits the prefetch buffer is free, a pop from a cold buffer pays one memory
read (``free_page_fetch_ns``).

The same object backs the SW-emulated SMU (there the "prefetch buffer"
distinction does not apply — software always reads memory, and that cost is
inside the emulation-phase constants).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import SmuError
from repro.sim import Counter


class FreePageQueue:
    """Bounded single-producer/single-consumer free-frame queue."""

    def __init__(self, depth: int, prefetch_entries: int = 16):
        if depth < 1:
            raise SmuError("free page queue depth must be >= 1")
        if prefetch_entries < 0:
            raise SmuError("prefetch buffer cannot be negative")
        self.depth = depth
        self.prefetch_entries = prefetch_entries
        self._queue: Deque[int] = deque()
        self._prefetch: Deque[int] = deque()
        self.stats = Counter()
        #: Simulation-order sanitizer hook (set by SimSanitizer.watch).
        self._sanitizer = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Frames available to the consumer (queue + prefetch buffer)."""
        return len(self._queue) + len(self._prefetch)

    @property
    def space(self) -> int:
        return self.depth - len(self._queue)

    @property
    def is_empty(self) -> bool:
        return self.occupancy == 0

    # ------------------------------------------------------------------
    # producer side (kernel: kpoold or synchronous refill)
    # ------------------------------------------------------------------
    def refill(self, pfns: List[int]) -> int:
        """Producer appends frames; returns how many were accepted."""
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        accepted = 0
        for pfn in pfns:
            if len(self._queue) >= self.depth:
                break
            self._queue.append(pfn)
            accepted += 1
        self.stats.add("refilled", accepted)
        return accepted

    # ------------------------------------------------------------------
    # consumer side (SMU free-page fetcher)
    # ------------------------------------------------------------------
    def pop(self) -> "PopResult":
        """Consume one frame.

        Returns a :class:`PopResult`: ``pfn`` is None when the queue is
        empty (the SMU then fails the miss back to the OS, §III-C), and
        ``from_prefetch`` says whether the pop was latency-hidden.
        """
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        if self._prefetch:
            pfn = self._prefetch.popleft()
            self.stats.add("pop_prefetched")
            self._refill_prefetch()
            return PopResult(pfn, from_prefetch=True)
        if self._queue:
            pfn = self._queue.popleft()
            self.stats.add("pop_cold")
            self._refill_prefetch()
            return PopResult(pfn, from_prefetch=False)
        self.stats.add("pop_empty")
        return PopResult(None, from_prefetch=False)

    def give_back(self, pfn: int) -> bool:
        """Consumer returns a popped-but-unused frame (dropped prefetch).

        The frame goes back to the *head* of the queue — it was the next
        frame anyway, and re-consuming it first keeps occupancy accounting
        symmetric with the pop.  Returns False (frame not accepted) only
        when the producer refilled the queue to capacity in the meantime;
        the caller must then hand the frame to the global pool.
        """
        if self._sanitizer is not None:
            self._sanitizer.note_write(self)
        if len(self._queue) >= self.depth:
            self.stats.add("give_back_overflow")
            return False
        self._queue.appendleft(pfn)
        self.stats.add("given_back")
        return True

    def _refill_prefetch(self) -> None:
        """Eagerly stage entries into the SRAM buffer (hidden by device time)."""
        while self._queue and len(self._prefetch) < self.prefetch_entries:
            self._prefetch.append(self._queue.popleft())

    def prefetch_now(self) -> None:
        """Explicitly trigger the eager prefetch (e.g. during device I/O)."""
        self._refill_prefetch()

    # ------------------------------------------------------------------
    def drain(self) -> List[int]:
        """Remove every frame (teardown path); returns them for freeing."""
        frames = list(self._prefetch) + list(self._queue)
        self._prefetch.clear()
        self._queue.clear()
        return frames


class PopResult:
    """Outcome of one :meth:`FreePageQueue.pop`."""

    __slots__ = ("pfn", "from_prefetch")

    def __init__(self, pfn: Optional[int], from_prefetch: bool):
        self.pfn = pfn
        self.from_prefetch = from_prefetch

    @property
    def empty(self) -> bool:
        return self.pfn is None
