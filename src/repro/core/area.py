"""SMU area model (paper §VI-D).

The paper coarsely estimates the SMU's area with McPAT's SRAM and register
models at 22 nm and reports, for an Intel Xeon E5-2640 v3 (354 mm² die):

* total SMU area 0.014 mm² — 0.004 % of the die;
* PMSHR (32 × 300-bit fully-associative CAM): 87.6 % of the SMU;
* NVMe descriptor registers (8 × 352 bits): 6.7 %;
* free-page prefetch buffer (16 × <PFN, DMA address>): 3.7 %;
* miscellaneous registers: 2.0 %.

We cannot run McPAT here, so the per-bit area coefficients below are
calibrated so the default configuration reproduces exactly those published
numbers; the model then *extrapolates* to other PMSHR/buffer sizes for the
ablation benches (CAM bits cost ~4× SRAM bits, consistent with
fully-associative match-line overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SmuConfig

#: Die size of the Xeon E5-2640 v3 at 22 nm [Bowhill et al., cited as [12]].
XEON_E5_2640V3_DIE_MM2 = 354.0

#: Calibrated per-bit areas (mm²/bit) — see module docstring.
CAM_MM2_PER_BIT = 0.876 * 0.014 / (32 * 300)
REGISTER_MM2_PER_BIT = 0.067 * 0.014 / (8 * 352)
SRAM_MM2_PER_BIT = 0.037 * 0.014 / (16 * 116)
MISC_MM2 = 0.020 * 0.014


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas of one SMU, in mm²."""

    pmshr_mm2: float
    nvme_registers_mm2: float
    prefetch_buffer_mm2: float
    misc_mm2: float

    @property
    def total_mm2(self) -> float:
        return (
            self.pmshr_mm2
            + self.nvme_registers_mm2
            + self.prefetch_buffer_mm2
            + self.misc_mm2
        )

    def fractions(self) -> Dict[str, float]:
        total = self.total_mm2
        return {
            "pmshr": self.pmshr_mm2 / total,
            "nvme_registers": self.nvme_registers_mm2 / total,
            "prefetch_buffer": self.prefetch_buffer_mm2 / total,
            "misc": self.misc_mm2 / total,
        }

    def fraction_of_die(self, die_mm2: float = XEON_E5_2640V3_DIE_MM2) -> float:
        return self.total_mm2 / die_mm2


def estimate_area(config: SmuConfig) -> AreaBreakdown:
    """Estimate one SMU's area from its configured sizes."""
    pmshr_bits = config.pmshr_entries * config.pmshr_entry_bits
    register_bits = config.devices_per_smu * config.nvme_descriptor_bits
    prefetch_bits = config.prefetch_buffer_entries * config.prefetch_entry_bits
    return AreaBreakdown(
        pmshr_mm2=pmshr_bits * CAM_MM2_PER_BIT,
        nvme_registers_mm2=register_bits * REGISTER_MM2_PER_BIT,
        prefetch_buffer_mm2=prefetch_bits * SRAM_MM2_PER_BIT,
        misc_mm2=MISC_MM2,
    )
