"""The paper's contribution: SMU, PMSHR, free-page queue, area model, and
the system builder that assembles OSDP / SWDP / HWDP machines."""

from repro.core.area import AreaBreakdown, estimate_area
from repro.core.free_page_queue import FreePageQueue, PopResult
from repro.core.host_controller import QueueDescriptor, SmuHostController
from repro.core.page_table_updater import PageTableUpdater
from repro.core.pmshr import Pmshr, PmshrEntry
from repro.core.prefetcher import SequentialReadahead
from repro.core.smu import Smu, SmuComplex
from repro.core.system import System, build_system

__all__ = [
    "Pmshr",
    "PmshrEntry",
    "FreePageQueue",
    "PopResult",
    "SmuHostController",
    "QueueDescriptor",
    "PageTableUpdater",
    "Smu",
    "SmuComplex",
    "SequentialReadahead",
    "System",
    "build_system",
    "AreaBreakdown",
    "estimate_area",
]
