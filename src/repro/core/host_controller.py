"""The SMU's NVMe host controller (paper §III-C, Figures 8/9).

Holds up to eight sets of NVMe queue descriptor registers — one per block
device behind this SMU (3-bit device ID).  When the OS enables hardware
demand paging for a file, it allocates a fresh, *isolated* NVMe queue pair
on the device (separate from all OS-managed queues), disables its
interrupts, and programs one descriptor set; from then on the controller
can issue 4 KB reads and consume completions entirely in hardware:

* issue = build a 64-byte command in the SQ (77.16 ns memory write) + ring
  the SQ doorbell (1.60 ns PCIe register write);
* completion = snoop the memory write the device performs at
  ``CQ base + CQ head`` and run the CQ protocol (no interrupt).

Each command is tagged (``cid``) with the index of the PMSHR entry that
caused it, so the completion unit can find the entry (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import SmuConfig
from repro.errors import SmuError
from repro.sim import Simulator, spawn
from repro.storage.nvme import NVMeCommand, NVMeDevice, NVMeOpcode, QueuePair


@dataclass
class QueueDescriptor:
    """One programmed descriptor-register set (Figure 9)."""

    device_id: int
    device: NVMeDevice
    qp: QueuePair
    nsid: int


class SmuHostController:
    """The NVMe host controller block of one SMU."""

    def __init__(
        self,
        sim: Simulator,
        config: SmuConfig,
        on_completion: Callable[[NVMeCommand], None],
    ):
        self.sim = sim
        self.config = config
        self._on_completion = on_completion
        self._descriptors: List[Optional[QueueDescriptor]] = [None] * config.devices_per_smu
        self.commands_issued = 0
        self.completions_snooped = 0
        #: Times an issuing miss found its SQ full and had to wait for a
        #: completion to free a slot.
        self.sq_backpressure_waits = 0

    # ------------------------------------------------------------------
    # control plane: the OS programs descriptor sets
    # ------------------------------------------------------------------
    def install_device(self, device: NVMeDevice, nsid: int) -> int:
        """Allocate an isolated, interrupt-less queue pair and program a
        descriptor set for it; returns the 3-bit device ID."""
        for device_id, slot in enumerate(self._descriptors):
            if slot is None:
                qp = device.create_queue_pair(
                    depth=self.config.sq_depth, interrupt_enabled=False, owner="smu"
                )
                descriptor = QueueDescriptor(device_id, device, qp, nsid)
                self._descriptors[device_id] = descriptor
                spawn(self.sim, self._completion_unit(descriptor), f"smu-cqsnoop-{device_id}")
                return device_id
        raise SmuError(
            f"all {self.config.devices_per_smu} descriptor sets in use "
            "(3-bit device ID exhausted)"
        )

    def descriptor(self, device_id: int) -> QueueDescriptor:
        if not 0 <= device_id < len(self._descriptors):
            raise SmuError(f"device ID {device_id} out of range")
        slot = self._descriptors[device_id]
        if slot is None:
            raise SmuError(f"device ID {device_id} has no programmed descriptor")
        return slot

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    @property
    def issue_latency_ns(self) -> float:
        """Command build + SQ doorbell (Figure 11b's dominant before-device
        costs: 77.16 ns + 1.60 ns)."""
        return self.config.nvme_command_write_ns + self.config.doorbell_write_ns

    def await_sq_slot(self, thread, device_id: int):
        """Backpressure: stall the issuing miss until the SQ has a slot.

        A full submission queue is congestion, not a programming error —
        the controller holds the doorbell write until a completion frees a
        slot instead of overflowing the queue.  The slot is *reserved* on
        return (several misses stall concurrently between admission and
        doorbell), so the caller must issue with ``claimed=True``.
        """
        qp = self.descriptor(device_id).qp
        while qp.occupied >= qp.depth:
            self.sq_backpressure_waits += 1
            yield from thread.mwait(qp.slot_freed)
        qp.reserved += 1

    def issue_read(
        self, device_id: int, lba: int, dma_addr: int, tag: int, claimed: bool = False
    ) -> None:
        """Issue a 4 KB read without a PRP list (§III-C).

        The caller (the page-miss handler pipeline) accounts the
        ``issue_latency_ns`` stall; this method performs the submission.
        ``claimed`` converts a reservation taken by :meth:`await_sq_slot`
        into the real outstanding slot.
        """
        descriptor = self.descriptor(device_id)
        if claimed:
            descriptor.qp.reserved -= 1
        command = NVMeCommand(
            NVMeOpcode.READ, nsid=descriptor.nsid, lba=lba, cid=tag, dma_addr=dma_addr
        )
        descriptor.device.submit(descriptor.qp, command)
        self.commands_issued += 1
        sink = self.sim.trace
        if sink is not None:
            sink.instant(
                "smu_host.sq_doorbell", device_id=device_id, lba=lba, cid=tag
            )

    def _completion_unit(self, descriptor: QueueDescriptor):
        """Snoop CQ memory writes and percolate completions upward."""
        while True:
            command = yield from descriptor.qp.cq.get()
            self.completions_snooped += 1
            sink = self.sim.trace
            if sink is not None:
                sink.instant(
                    "smu_host.cq_snoop",
                    device_id=descriptor.device_id,
                    cid=command.cid,
                    status=command.status.value,
                )
            # CQ protocol (pointer, phase, CQ doorbell) costs are charged in
            # the page-miss handler's after-device accounting.
            self._on_completion(command)
