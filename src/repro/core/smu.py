"""The Storage Management Unit (paper §III-C, Figure 7).

The SMU is the hardware that turns a page miss into a completed page-table
update without any OS involvement.  One instance per socket; the MMU routes
a miss here via the socket ID in the LBA-augmented PTE.  Pipeline for one
miss (Figure 7's circled steps, with Figure 11(b)'s timings):

1. MMU sends ``(PUD-entry addr, PMD-entry addr, PTE addr, device ID, LBA)``
   (two register writes);
2. PMSHR CAM lookup (5 cycles) — a hit coalesces the request: the walk goes
   *pending* until the completion broadcast;
3. the free-page fetcher pops a frame from the free-page queue (free when
   the prefetch buffer is warm; one memory read, 90 ns, when cold).  An
   empty queue aborts the miss: the PMSHR entry is invalidated and the MMU
   raises a normal page-fault exception (the OS also refills the queue);
4. the entry is finalised with the PFN;
5. the NVMe host controller builds and submits the command (77.16 ns +
   1.60 ns doorbell);
6. device I/O; the completion unit snoops the CQ write (2 cycles);
7. the page-table updater writes PTE/PMD/PUD (97 cycles);
8. completion broadcast wakes all pending walks; the PMSHR entry retires
   (2 cycles notify).

The *pipeline stalls* of the faulting core are pure hardware time — no
kernel instructions, no pollution — which is precisely the paper's point.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.config import SystemConfig
from repro.core.host_controller import SmuHostController
from repro.core.page_table_updater import PageTableUpdater
from repro.core.pmshr import Pmshr
from repro.core.prefetcher import create_prefetcher
from repro.errors import SmuError
from repro.obs import trace as obs
from repro.sim import (
    Completion,
    Signal,
    Simulator,
    StatAccumulator,
    WaitSignal,
    first_of,
    timer,
)
from repro.storage.nvme import NVMeCommand
from repro.vm.page_table import WalkResult
from repro.vm.pte import ANON_FIRST_TOUCH_LBA


class Smu:
    """One socket's Storage Management Unit."""

    def __init__(self, sim: Simulator, config: SystemConfig, kernel: Any, socket_id: int = 0):
        self.sim = sim
        self.config = config
        self.kernel = kernel
        self.socket_id = socket_id
        smu_config = config.smu
        self.pmshr = Pmshr(sim, smu_config.pmshr_entries)
        self.host = SmuHostController(sim, smu_config, self._on_completion)
        self.updater = PageTableUpdater()
        # Per-miss stall durations are configuration constants; computing
        # them once (with the same expressions) keeps the values bit-equal.
        self._request_cam_ns = self._cycles_ns(
            smu_config.request_reg_write_cycles + smu_config.cam_lookup_cycles
        )
        self._notify_ns = self._cycles_ns(smu_config.notify_cycles)
        # Completion labels are debugging aids only; minting them here
        # keeps the per-miss I/O registration free of string formatting.
        self._io_names = tuple(
            f"smu-io-{index}" for index in range(smu_config.pmshr_entries)
        )
        self._completion_update_ns = (
            self._cycles_ns(
                smu_config.completion_unit_cycles + smu_config.entry_update_cycles
            )
            + smu_config.doorbell_write_ns  # CQ doorbell
        )
        if not kernel.iter_free_queues():
            raise SmuError("HWDP kernel must provide a free-page queue")
        #: cid (PMSHR index) → in-flight context for completion routing.
        self._inflight_by_tag: Dict[int, Any] = {}
        #: Per-process outstanding-miss counts, for the munmap SMU barrier.
        self._outstanding_by_pid: Dict[int, int] = {}
        self._barrier_signal = Signal(sim, "smu-barrier")
        #: §V extensions (inactive unless configured).  The prefetch block
        #: is pluggable (``SmuConfig.prefetcher``); ``readahead`` keeps its
        #: historical name for the default sequential policy.
        self.readahead = create_prefetcher(
            smu_config.prefetcher, self, smu_config.readahead_degree
        )
        # -- statistics ---------------------------------------------------
        self.misses_handled = 0
        self.misses_failed = 0
        self.anon_zero_fills = 0
        self.io_timeouts = 0
        #: NVMe error completions observed by the completion unit (each
        #: retry that fails counts once).
        self.io_errors = 0
        #: Misses abandoned after the retry budget: the PMSHR entry is
        #: released unfilled and the OS fault handler takes over.
        self.io_error_failures = 0
        self.before_device_stat = StatAccumulator("smu-before-device")
        self.after_device_stat = StatAccumulator("smu-after-device")

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def _cycles_ns(self, cycles: float) -> float:
        return self.config.cpu.cycles_to_ns(cycles)

    # ------------------------------------------------------------------
    # the page-miss handler pipeline (called from the MMU walker)
    # ------------------------------------------------------------------
    def handle_miss(
        self, walk: WalkResult, decoded: Any, thread: Any
    ) -> Generator[Any, Any, Optional[int]]:
        """Handle one hardware page miss; returns the PFN or None on failure.

        Runs in the faulting thread's coroutine: every ``yield`` is a
        pipeline stall of that core, never kernel work.
        """
        sink = self.sim.trace
        if sink is None:
            pfn = yield from self._handle_miss(walk, decoded, thread, None)
            return pfn
        span = sink.begin_span(
            thread.name,
            obs.PATH_HWDP,
            smu=self.socket_id,
            pte_addr=f"{walk.pte_addr:#x}",
            lba=decoded.lba,
        )
        previous_span = thread.active_span
        thread.active_span = span
        try:
            pfn = yield from self._handle_miss(walk, decoded, thread, span)
        except BaseException as exc:
            sink.end_span(span, obs.FAILED, error=type(exc).__name__)
            raise
        finally:
            thread.active_span = previous_span
        if pfn is None:
            # Failed back to the MMU: the OS fault handler opens its own
            # hwdp-fallback span when the exception is taken.
            sink.end_span(span, obs.FAILED)
        else:
            sink.end_span(span, span.outcome or obs.COMPLETED, pfn=pfn)
        return pfn

    # repro: hot-path
    def _handle_miss(
        self, walk: WalkResult, decoded: Any, thread: Any, span: Any
    ) -> Generator[Any, Any, Optional[int]]:
        smu_config = self.config.smu
        counters = self.kernel.counters
        if decoded.socket_id != self.socket_id:
            raise SmuError(
                f"miss routed to SMU {self.socket_id} but PTE names socket "
                f"{decoded.socket_id}"
            )

        # Step 1-2: request registers + CAM lookup.
        if span is not None:
            segment_start = self.sim.now
        yield from thread.stall(self._request_cam_ns)
        if span is not None:
            span.event(segment_start, "request_cam_lookup", self.sim.now - segment_start)
        # One atomic probe-then-claim per attempt, all through a single
        # call site (see Pmshr.lookup_or_allocate).  The paper does not
        # spell out full-PMSHR behaviour; like an MSHR, the walk stalls
        # until an entry frees.
        while True:
            entry, created = self.pmshr.lookup_or_allocate(
                walk.pte_addr,
                walk.pmd_entry_addr,
                walk.pud_entry_addr,
                decoded.device_id,
                decoded.lba,
            )
            if entry is not None:
                break
            if span is not None:
                segment_start = self.sim.now
            yield from thread.mwait(self.pmshr.slot_freed)
            if span is not None:
                span.event(segment_start, "pmshr_full_wait", self.sim.now - segment_start)
        if not created:
            # Coalesced: the page-table walk goes pending until broadcast.
            if span is not None:
                span.outcome = obs.COALESCED
                segment_start = self.sim.now
            pfn = yield from thread.mwait(entry.completion)
            if span is not None:
                span.event(segment_start, "coalesced_wait", self.sim.now - segment_start)
            if pfn is not None:
                yield from thread.stall(self._notify_ns)
            return pfn

        if span is not None:
            span.event(self.sim.now, "pmshr_allocate")
        pid = thread.process.pid
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note(f"smu[{self.socket_id}].outstanding_by_pid", "write")
        self._outstanding_by_pid[pid] = self._outstanding_by_pid.get(pid, 0) + 1
        started = self.sim.now

        try:
            # Step 3: free-page fetch (per-core queue under the §V extension).
            free_queue = self.kernel.free_queue_for(thread.core.core_id)
            pop = free_queue.pop()
            if pop.empty:
                # Invalidate the entry and fail the miss back to the MMU;
                # the OS fault handler takes over and refills (§IV-D).
                self.misses_failed += 1
                counters.add("smu.queue_empty_failures")
                self.pmshr.release(entry, None)
                if span is not None:
                    span.attrs["reason"] = "queue_empty"
                return None
            if span is not None:
                segment_start = self.sim.now
            if not pop.from_prefetch:
                yield from thread.stall(smu_config.free_page_fetch_ns)
            if span is not None:
                span.event(segment_start, "free_page_fetch", self.sim.now - segment_start)

            # §V anonymous-page extension: the reserved LBA constant means
            # "first touch" — bypass I/O, hand back a zero-filled frame.
            if decoded.lba == ANON_FIRST_TOUCH_LBA:
                entry.pfn = pop.pfn
                self.before_device_stat.add(self.sim.now - started)
                if span is not None:
                    segment_start = self.sim.now
                yield from thread.stall(smu_config.anon_zero_fill_ns)
                if span is not None:
                    span.event(
                        segment_start, "anon_zero_fill", self.sim.now - segment_start
                    )
                after_start = self.sim.now
                yield from self._finish_update(thread, entry, pop.pfn)
                self.after_device_stat.add(self.sim.now - after_start)
                self.anon_zero_fills += 1
                self.misses_handled += 1
                counters.add("smu.anon_zero_fills")
                self.pmshr.release(entry, pop.pfn)
                return pop.pfn

            # Step 4-5: finalise the entry, build + submit the command.
            # A full SQ applies backpressure (wait for a slot) rather than
            # overflowing; an NVMe error completion is retried with linear
            # backoff up to the resilience budget, after which the miss is
            # failed back to the OS handler like a dry free-page queue.
            entry.pfn = pop.pfn
            resilience = self.config.resilience
            command = None
            for attempt in range(1 + resilience.smu_io_retries):
                if span is not None:
                    segment_start = self.sim.now
                yield from self.host.await_sq_slot(thread, decoded.device_id)
                yield from thread.stall(self.host.issue_latency_ns)
                if attempt == 0:
                    self.before_device_stat.add(self.sim.now - started)
                io_done = self._register_io(entry)
                self.host.issue_read(
                    decoded.device_id, decoded.lba, pop.pfn, entry.index, claimed=True
                )
                if span is not None:
                    span.event(segment_start, "sq_submit", self.sim.now - segment_start)
                if attempt == 0:
                    self.readahead.observe_demand_miss(
                        walk, decoded, thread.process.page_table, thread.core.core_id
                    )
                    # Step 6: device I/O, completion snooped by the host
                    # controller.  The prefetch buffer is eagerly re-warmed
                    # during the device time.
                    free_queue.prefetch_now()
                if span is not None:
                    segment_start = self.sim.now
                yield from self._wait_for_io(thread, io_done)
                if span is not None:
                    span.event(segment_start, "nvme_service", self.sim.now - segment_start)
                command = io_done.value
                if command is None or command.ok:
                    break
                self.io_errors += 1
                counters.add("smu.io_errors")
                if attempt < resilience.smu_io_retries:
                    counters.add("smu.io_retries")
                    if span is not None:
                        segment_start = self.sim.now
                    yield from thread.stall(
                        resilience.smu_retry_backoff_ns * (attempt + 1)
                    )
                    if span is not None:
                        span.event(
                            segment_start, "io_retry_backoff", self.sim.now - segment_start
                        )
            if command is not None and not command.ok:
                # Retry budget exhausted: return the frame, invalidate the
                # entry (waking coalesced walks with None), fail the miss.
                self.misses_failed += 1
                self.io_error_failures += 1
                counters.add("smu.io_error_failures")
                self.kernel.frame_pool.free(pop.pfn)
                self.pmshr.release(entry, None)
                if span is not None:
                    span.attrs["reason"] = "io_error"
                return None
            after_start = self.sim.now
            yield from self._finish_update(thread, entry, pop.pfn)
            self.after_device_stat.add(self.sim.now - after_start)
            self.misses_handled += 1
            self.pmshr.release(entry, pop.pfn)
            return pop.pfn
        finally:
            sanitizer = self.sim.sanitizer
            if sanitizer is not None:
                sanitizer.note(f"smu[{self.socket_id}].outstanding_by_pid", "write")
            remaining = self._outstanding_by_pid.get(pid, 0) - 1
            if remaining <= 0:
                self._outstanding_by_pid.pop(pid, None)
            else:
                self._outstanding_by_pid[pid] = remaining
            self._barrier_signal.fire()

    # ------------------------------------------------------------------
    def _finish_update(self, thread: Any, entry, pfn: int):
        """Steps 6-8 after the data is in memory: completion protocol,
        PTE/PMD/PUD write-back (LBA bit stays set for kpted), broadcast."""
        span = thread.active_span
        if span is not None:
            segment_start = self.sim.now
        yield from thread.stall(self._completion_update_ns)
        self.updater.apply(
            thread.process.page_table,
            entry.pte_addr,
            entry.pmd_entry_addr,
            entry.pud_entry_addr,
            pfn,
        )
        self.kernel.counters.add("install.hw_pending")
        if span is not None:
            span.event(segment_start, "completion_snoop", self.sim.now - segment_start)
            span.event(self.sim.now, "page_table_update")
            segment_start = self.sim.now
        yield from thread.stall(self._notify_ns)
        if span is not None:
            span.event(segment_start, "notify_broadcast", self.sim.now - segment_start)

    def _wait_for_io(self, thread: Any, io_done: Completion):
        """Wait for the device, optionally bounded by the §V I/O timeout.

        Without a timeout the pipeline stalls for the whole device time.
        With one, a read outstanding past the deadline raises a timeout
        exception and the OS context-switches the thread out — trading the
        fault-path kernel cost for freed issue slots during very long I/O.
        """
        timeout_ns = self.config.smu.long_io_timeout_ns
        if timeout_ns is None:
            yield from thread.mwait(io_done)
            return
        deadline = timer(self.sim, timeout_ns, "smu-io-timeout")
        index, _ = yield from thread.mwait(first_of(self.sim, io_done, deadline))
        if index == 0 or io_done.done:
            return
        # Timeout fired first: exception + switch out; the SMU still
        # completes the miss in hardware while the thread is parked.
        self.io_timeouts += 1
        self.kernel.counters.add("smu.io_timeouts")
        costs = self.kernel.config.osdp_costs
        yield from thread.kernel_phase(costs.exception_walk_ns, "timeout_exception")
        yield from thread.kernel_phase(costs.context_switch_out_ns, "timeout_switch_out")
        yield from thread.block(io_done)
        yield from thread.kernel_phase(costs.context_switch_in_ns, "timeout_switch_in")

    # ------------------------------------------------------------------
    # repro: hot-path
    def _register_io(self, entry) -> Completion:
        done = Completion(self.sim, self._io_names[entry.index])
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note(f"smu[{self.socket_id}].inflight_tags", "write")
        self._inflight_by_tag[entry.index] = done
        return done

    def _on_completion(self, command: NVMeCommand) -> None:
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.note(f"smu[{self.socket_id}].inflight_tags", "write")
        done = self._inflight_by_tag.pop(command.cid, None)
        if done is None:
            raise SmuError(f"completion for unknown PMSHR tag {command.cid}")
        done.fire(command)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def outstanding_for(self, process: Any) -> int:
        return self._outstanding_by_pid.get(process.pid, 0)

    def barrier(self, process: Any) -> Generator[Any, Any, None]:
        """The munmap SMU barrier (§IV-C): wait out this process's misses."""
        while self.outstanding_for(process) > 0:
            yield WaitSignal(self._barrier_signal)

    @property
    def outstanding(self) -> int:
        return self.pmshr.outstanding


class SmuComplex:
    """All the SMUs of a multi-socket machine (3-bit SID → up to eight).

    The MMU holds one of these: each LBA-augmented PTE names its *home SMU*
    via the socket-ID field (§III-B), and the complex routes the miss there.
    Single-socket machines get a complex of one; the interface is the same.
    """

    def __init__(self, smus):
        if not smus:
            raise SmuError("an SMU complex needs at least one SMU")
        if len(smus) > 8:
            raise SmuError("the 3-bit socket ID supports at most 8 SMUs")
        self.smus = list(smus)
        for expected, smu in enumerate(self.smus):
            if smu.socket_id != expected:
                raise SmuError(
                    f"SMU at position {expected} carries socket ID {smu.socket_id}"
                )

    def __len__(self) -> int:
        return len(self.smus)

    def __getitem__(self, socket_id: int) -> Smu:
        return self.smus[socket_id]

    def smu_for(self, socket_id: int) -> Smu:
        if not 0 <= socket_id < len(self.smus):
            raise SmuError(f"no SMU for socket {socket_id}")
        return self.smus[socket_id]

    def handle_miss(
        self, walk: WalkResult, decoded: Any, thread: Any
    ) -> Generator[Any, Any, Optional[int]]:
        """Route the miss to the PTE's home SMU (the MMU's entry point)."""
        smu = self.smu_for(decoded.socket_id)
        pfn = yield from smu.handle_miss(walk, decoded, thread)
        return pfn

    def barrier(self, process: Any) -> Generator[Any, Any, None]:
        """munmap barrier across every socket's SMU."""
        for smu in self.smus:
            yield from smu.barrier(process)

    # -- aggregate statistics -------------------------------------------
    @property
    def misses_handled(self) -> int:
        return sum(smu.misses_handled for smu in self.smus)

    @property
    def misses_failed(self) -> int:
        return sum(smu.misses_failed for smu in self.smus)
