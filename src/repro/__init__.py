"""repro — reproduction of *A Case for Hardware-Based Demand Paging* (ISCA 2020).

A behavioural full-system simulator for hardware-based demand paging:
LBA-augmented page tables, the Storage Management Unit (SMU), a Linux-like
OS model (the OSDP baseline and the HWDP control plane), NVMe device models,
and the paper's workloads (FIO, DBBench/RocksDB stand-in, YCSB, SPEC-like).

Public entry points:

* :func:`repro.core.system.build_system` — construct a simulated machine in
  OSDP / SWDP / HWDP mode.
* :mod:`repro.workloads` — workload drivers.
* :mod:`repro.experiments` — one module per paper figure/table.
"""

__version__ = "1.0.0"
