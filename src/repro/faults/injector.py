"""The deterministic fault injector.

One injector per simulated machine, created by the system builder when the
config carries a :class:`repro.faults.plan.FaultPlan`.  It owns:

* its **own named RNG stream** (``rng.stream("fault-injector")``) — fault
  decisions never consume randomness from the device-latency or workload
  streams, so enabling injection does not perturb their sequences, and a
  fixed ``(master_seed, plan)`` pair always yields the same injections;
* the **per-rule injection counts** enforcing each rule's ``max_count``;
* a :class:`repro.sim.Counter` tallying what was injected, which the
  invariant checker and the resilience experiment cross-check against the
  consumer-side error counters.

When no plan is configured the injector simply does not exist (the device
and kernel hooks hold ``None``), which is the zero-perturbation guarantee:
fault-free runs execute byte-identically to a build without this module.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.sim import Counter

#: FaultKind -> NVMe status name the device stamps on the completion
#: (resolved lazily to avoid importing the storage layer from here).
_STATUS_BY_KIND = {
    FaultKind.READ_ERROR: "UNRECOVERED_READ",
    FaultKind.WRITE_ERROR: "WRITE_FAULT",
    FaultKind.TIMEOUT: "COMMAND_TIMEOUT",
}


class FaultDecision:
    """One injection: the status to stamp and any extra completion delay."""

    __slots__ = ("rule", "status_name", "extra_delay_ns")

    def __init__(self, rule: FaultRule, status_name: str, extra_delay_ns: float):
        self.rule = rule
        self.status_name = status_name
        self.extra_delay_ns = extra_delay_ns


class FaultInjector:
    """Evaluates a fault plan against storage commands and refill attempts."""

    def __init__(self, plan: FaultPlan, rng: Any):
        self.plan = plan
        self.rng = rng
        self.stats = Counter()
        self._counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _exhausted(self, index: int, rule: FaultRule) -> bool:
        return (
            rule.max_count is not None
            and self._counts.get(index, 0) >= rule.max_count
        )

    def _roll(self, rule: FaultRule) -> bool:
        """Draw from the dedicated stream only when the rule is armed and
        probabilistic — eligible events are visited in deterministic
        simulation order, so the decision sequence is reproducible."""
        if rule.probability >= 1.0:
            return True
        return bool(self.rng.random() < rule.probability)

    def _record(self, index: int, rule: FaultRule) -> None:
        self._counts[index] = self._counts.get(index, 0) + 1
        self.stats.add(f"injected.{rule.kind.value}")
        self.stats.add("injected.total")

    # ------------------------------------------------------------------
    # device side: called by NVMeDevice when a command finishes service
    # ------------------------------------------------------------------
    def decide(
        self, device_name: str, command: Any, now_ns: float
    ) -> Optional[FaultDecision]:
        """First eligible command rule wins; None means complete normally."""
        for index, rule in enumerate(self.plan.rules):
            if rule.kind is FaultKind.QUEUE_STARVATION:
                continue
            if rule.kind is FaultKind.READ_ERROR and command.is_write:
                continue
            if rule.kind is FaultKind.WRITE_ERROR and not command.is_write:
                continue
            if not rule.applies_to_device(device_name):
                continue
            if not rule.covers_lba(command.lba):
                continue
            if not rule.in_window(now_ns):
                continue
            if self._exhausted(index, rule):
                continue
            if not self._roll(rule):
                self.stats.add("declined.roll")
                continue
            self._record(index, rule)
            extra = rule.timeout_ns if rule.kind is FaultKind.TIMEOUT else 0.0
            return FaultDecision(rule, _STATUS_BY_KIND[rule.kind], extra)
        return None

    # ------------------------------------------------------------------
    # kernel side: called by the free-page-queue refill routine
    # ------------------------------------------------------------------
    def starving(self, now_ns: float) -> bool:
        """True when an armed starvation rule suppresses this refill."""
        for index, rule in enumerate(self.plan.rules):
            if rule.kind is not FaultKind.QUEUE_STARVATION:
                continue
            if not rule.in_window(now_ns):
                continue
            if self._exhausted(index, rule):
                continue
            if not self._roll(rule):
                self.stats.add("declined.roll")
                continue
            self._record(index, rule)
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def injected_total(self) -> int:
        return int(self.stats.get("injected.total"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector {self.plan.name!r} injected={self.injected_total}>"
