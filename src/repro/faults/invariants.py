"""Post-run invariant checker for the storage/SMU/OS stack.

Error paths are exactly where resource leaks hide: a miss that fails over
to the OS must still release its PMSHR entry, return its free frame, drop
its in-flight tag, and drain its per-pid outstanding count — otherwise a
later ``munmap`` barrier hangs or the frame pool slowly bleeds.  This
module checks all of that at a quiescent point (workload finished, event
queue drained of storage traffic):

1. **PMSHR drained** — no outstanding entries in any socket's CAM (nor in
   the SWDP emulated table) and no dangling completion tags in any SMU.
2. **Barrier counters drained** — every SMU's per-pid outstanding map is
   empty, so a future ``munmap`` barrier cannot hang.
3. **I/O quiescent** — no in-flight commands in the OS block stack, the
   SMU queue pairs, or the device service station.
4. **Page table ⟷ resident frames** — every present PTE maps an allocated
   frame, every OS-tracked page is mapped by the PTE it records, and the
   frame pool's used count equals the frames accounted for by owners
   (resident pages + pending-sync hardware installs + free-queue slots).

``assert_invariants`` raises :class:`repro.errors.InvariantViolation` with
every failure listed; injected-fault tests and the ``resilience``
experiment run it after every simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import InvariantViolation
from repro.vm.pte import decode_pte


@dataclass
class InvariantReport:
    """Outcome of one :func:`check_invariants` pass."""

    violations: List[str] = field(default_factory=list)
    observed: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise InvariantViolation(
                "post-run invariant check failed:\n  - "
                + "\n  - ".join(self.violations)
            )


def _iter_smus(system: Any):
    if system.smu_complex is not None:
        yield from system.smu_complex.smus
    elif system.smu is not None:  # pragma: no cover - complex covers this
        yield system.smu


def check_invariants(system: Any) -> InvariantReport:
    """Check every invariant; returns a report (never raises)."""
    report = InvariantReport()
    kernel = system.kernel
    note = report.violations.append

    # -- 1/2: SMU state drained ----------------------------------------
    for smu in _iter_smus(system):
        if smu.pmshr.outstanding:
            note(
                f"SMU {smu.socket_id}: {smu.pmshr.outstanding} leaked PMSHR "
                f"entries (PTE addrs {sorted(smu.pmshr._by_pte_addr)[:4]}...)"
            )
        if smu._inflight_by_tag:
            note(
                f"SMU {smu.socket_id}: dangling in-flight completion tags "
                f"{sorted(smu._inflight_by_tag)}"
            )
        if smu._outstanding_by_pid:
            counts = dict(sorted(smu._outstanding_by_pid.items()))
            note(
                f"SMU {smu.socket_id}: per-pid outstanding counts not drained "
                f"{counts} (munmap barrier would hang)"
            )
    sw_pmshr = kernel.fault_handler.sw_pmshr
    if sw_pmshr is not None and sw_pmshr.outstanding:
        note(f"SWDP emulated PMSHR holds {sw_pmshr.outstanding} leaked entries")
    if kernel.fault_handler.inflight_faults:
        note(f"{kernel.fault_handler.inflight_faults} OS faults still in flight")

    # -- 3: storage stack quiescent ------------------------------------
    if kernel.blockio.inflight:
        note(f"OS block stack holds {kernel.blockio.inflight} in-flight commands")
    if kernel.smu_blockio is not None and kernel.smu_blockio.inflight:
        note(
            f"SMU block stack holds {kernel.smu_blockio.inflight} in-flight commands"
        )
    if system.device.in_flight:
        note(f"device {system.device.name} still servicing {system.device.in_flight}")
    for qid, qp in system.device.queue_pairs.items():
        if qp.outstanding:
            note(f"queue pair {qid} ({qp.owner}) has {qp.outstanding} outstanding")

    # -- 4: page table consistent with resident frames -----------------
    # Membership sets are fine, but anything *reported* (violation text,
    # the observed dict) must be sorted first: iterating a set of PFNs
    # would make the report text depend on hash order.
    tracked = set(kernel._page_info.keys())
    pending = set()
    free = set(kernel.frame_pool._free)
    for process in kernel.processes:
        for vpn, value in process.page_table.iter_populated():
            decoded = decode_pte(value)
            if not decoded.present:
                continue
            if decoded.pfn in free:
                note(
                    f"{process.name}: PTE for vpn {vpn:#x} maps freed frame "
                    f"{decoded.pfn}"
                )
            if decoded.lba_bit and decoded.pfn not in tracked:
                pending.add(decoded.pfn)
    for pfn in sorted(kernel._page_info):
        page = kernel._page_info[pfn]
        pte = decode_pte(page.process.page_table.get_pte(page.vaddr))
        if not pte.present or pte.pfn != pfn:
            note(
                f"OS tracks PFN {pfn} at {page.vaddr:#x} but the PTE does not "
                f"map it (present={pte.present} pfn={pte.pfn})"
            )
    queued = sum(queue.occupancy for queue in kernel.iter_free_queues())
    used = kernel.frame_pool.used_frames
    accounted = len(tracked) + len(pending) + queued
    if used != accounted:
        note(
            f"frame leak: pool says {used} frames in use, owners account for "
            f"{accounted} (resident={len(tracked)} pending-sync={len(pending)} "
            f"queued={queued}; resident sample {sorted(tracked)[:8]} "
            f"pending sample {sorted(pending)[:8]})"
        )

    report.observed.update(
        {
            "used_frames": used,
            "accounted_frames": accounted,
            "resident": len(tracked),
            "pending_sync": len(pending),
            "pending_pfns": sorted(pending),
            "queued": queued,
        }
    )
    return report


def assert_invariants(system: Any) -> InvariantReport:
    """Run :func:`check_invariants` and raise on any violation."""
    report = check_invariants(system)
    report.raise_if_failed()
    return report
