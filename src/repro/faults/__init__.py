"""Deterministic fault injection and post-run invariant checking.

See :mod:`repro.faults.plan` for the declarative fault plans,
:mod:`repro.faults.injector` for the seeded injector the system builder
attaches to the device and kernel, and :mod:`repro.faults.invariants`
for the quiescent-state checker run after injected-fault simulations.
"""

from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.invariants import (
    InvariantReport,
    assert_invariants,
    check_invariants,
)
from repro.faults.plan import FaultKind, FaultPlan, FaultRule, read_error_plan

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "InvariantReport",
    "assert_invariants",
    "check_invariants",
    "read_error_plan",
]
