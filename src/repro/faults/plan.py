"""Declarative fault plans.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultRule`\\ s, each
describing *what* to inject (an NVMe read/write error status, a command
timeout, or free-page-queue refill starvation) and *when* it is eligible
(per device, per LBA range, per simulated-time window, with an optional
probability and injection cap).  Plans are immutable and carry no runtime
state — the :class:`repro.faults.injector.FaultInjector` owns the seeded
RNG and the per-rule counters, so the same plan object can drive many
independent simulations.

Rules are evaluated in declaration order and the first eligible rule wins,
which makes layered plans ("all reads on device X error out, but LBAs
0-63 merely time out") easy to express and easy to reason about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError


class FaultKind(enum.Enum):
    """What a rule injects."""

    #: Read command completes with an unrecovered-read NVMe status.
    READ_ERROR = "read-error"
    #: Write command completes with a write-fault NVMe status.
    WRITE_ERROR = "write-error"
    #: Command is held ``timeout_ns`` beyond its service time, then
    #: completes with a timeout status (the host's abort reaping it).
    TIMEOUT = "timeout"
    #: Kernel refills of the SMU free-page queue(s) are suppressed while
    #: the rule's window is active, starving the hardware path into its
    #: queue-empty fallback (§IV-D).
    QUEUE_STARVATION = "queue-starvation"


@dataclass(frozen=True)
class FaultRule:
    """One trigger: a fault kind plus the conditions that arm it."""

    kind: FaultKind
    #: Device name the rule applies to (``None`` = every device).
    device: Optional[str] = None
    #: Half-open LBA window ``[lba_start, lba_end)``; ``lba_end=None``
    #: means unbounded.
    lba_start: int = 0
    lba_end: Optional[int] = None
    #: Half-open simulated-time window ``[start_ns, end_ns)``.
    start_ns: float = 0.0
    end_ns: Optional[float] = None
    #: Per-eligible-event injection probability (1.0 = always).
    probability: float = 1.0
    #: Total injections this rule may perform (``None`` = unbounded).
    max_count: Optional[int] = None
    #: Extra completion delay for :attr:`FaultKind.TIMEOUT` rules.
    timeout_ns: float = 100_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(f"fault probability {self.probability} not in [0, 1]")
        if self.lba_start < 0:
            raise ConfigError("lba_start must be >= 0")
        if self.lba_end is not None and self.lba_end <= self.lba_start:
            raise ConfigError("lba_end must exceed lba_start")
        if self.end_ns is not None and self.end_ns <= self.start_ns:
            raise ConfigError("end_ns must exceed start_ns")
        if self.max_count is not None and self.max_count < 1:
            raise ConfigError("max_count must be >= 1 (or None)")
        if self.timeout_ns < 0:
            raise ConfigError("timeout_ns must be >= 0")

    # ------------------------------------------------------------------
    def in_window(self, now_ns: float) -> bool:
        if now_ns < self.start_ns:
            return False
        return self.end_ns is None or now_ns < self.end_ns

    def covers_lba(self, lba: int) -> bool:
        if lba < self.lba_start:
            return False
        return self.lba_end is None or lba < self.lba_end

    def applies_to_device(self, device_name: str) -> bool:
        return self.device is None or self.device == device_name


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of fault rules."""

    rules: Tuple[FaultRule, ...] = ()
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        # Tolerate list literals at construction time; store a tuple so the
        # plan stays hashable (it rides inside the frozen SystemConfig).
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def command_rules(self) -> Tuple[FaultRule, ...]:
        return tuple(
            rule for rule in self.rules if rule.kind is not FaultKind.QUEUE_STARVATION
        )

    @property
    def starvation_rules(self) -> Tuple[FaultRule, ...]:
        return tuple(
            rule for rule in self.rules if rule.kind is FaultKind.QUEUE_STARVATION
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary (for logs and experiment payloads)."""
        return {
            "name": self.name,
            "rules": [
                {
                    "kind": rule.kind.value,
                    "device": rule.device,
                    "lba": [rule.lba_start, rule.lba_end],
                    "window_ns": [rule.start_ns, rule.end_ns],
                    "probability": rule.probability,
                    "max_count": rule.max_count,
                }
                for rule in self.rules
            ],
        }


def read_error_plan(
    rate: float, device: Optional[str] = None, name: str = "read-errors"
) -> FaultPlan:
    """The common case: every read errors with probability ``rate``."""
    return FaultPlan(
        rules=(FaultRule(kind=FaultKind.READ_ERROR, device=device, probability=rate),),
        name=name,
    )
