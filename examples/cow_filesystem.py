#!/usr/bin/env python3
"""Keeping LBA-augmented PTEs coherent under a copy-on-write file system.

The paper's §IV-B corner case: a CoW or log-structured file system (btrfs,
ZFS, F2FS) moves file blocks when they are rewritten.  A non-present
LBA-augmented PTE caches the *old* block address — so the kernel marks
fast-mmap'ed files and updates every affected PTE whenever the file system
remaps a block.  This example rewrites blocks of a fast-mmap'ed file and
shows the PTEs tracking the moves, then faults a remapped page to prove the
SMU reads the *new* location.

Run:  python examples/cow_filesystem.py
"""

from repro.config import PagingMode, SystemConfig
from repro.core.system import build_system
from repro.mem.address import PAGE_SHIFT
from repro.os.vma import MmapFlags
from repro.vm import decode_pte


def main() -> None:
    system = build_system(SystemConfig(mode=PagingMode.HWDP))
    process = system.create_process("cow-demo")
    thread = system.workload_thread(process, index=0)
    fs = system.kernel.fs
    file = fs.create_file("btrfs-like.dat", num_pages=8)

    state = {}

    def body():
        vma = yield from system.kernel.sys_mmap(
            thread, file, file.num_pages, MmapFlags.FASTMAP
        )
        state["vma"] = vma
        # Touch page 0 so one page is resident; pages 1..7 stay
        # LBA-augmented and non-present.
        yield from thread.mem_access(vma.start)

    setup = system.spawn(body(), "setup")
    while not setup.finished:
        system.sim.step()
    vma = state["vma"]
    table = process.page_table

    print("fast-mmap'ed file: PTE LBAs before any rewrite")
    for page in range(4):
        pte = decode_pte(table.get_pte(vma.start + (page << PAGE_SHIFT)))
        where = f"resident (PFN {pte.pfn})" if pte.present else f"LBA {pte.lba}"
        print(f"  page {page}: {where}")

    print("\nfile system rewrites blocks 1 and 2 (CoW: new locations)...")
    for page in (1, 2):
        old = file.lba_of_page(page)
        new = fs.remap_page(file, page)
        print(f"  page {page}: LBA {old} -> {new}")

    print("\nPTEs after the remap hook ran:")
    for page in range(4):
        pte = decode_pte(table.get_pte(vma.start + (page << PAGE_SHIFT)))
        where = f"resident (PFN {pte.pfn})" if pte.present else f"LBA {pte.lba}"
        marker = "  <- updated in place" if page in (1, 2) and not pte.present else ""
        print(f"  page {page}: {where}{marker}")
    updates = system.kernel.counters["remap.pte_updates"]
    print(f"\nkernel updated {updates:.0f} LBA-augmented PTE(s) (paper §IV-B)")

    # Fault a remapped page: the SMU must fetch from the NEW location.
    fetched = {}

    def fault_remapped():
        yield from thread.mem_access(vma.start + (1 << PAGE_SHIFT))
        fetched["lba"] = file.lba_of_page(1)

    proc = system.spawn(fault_remapped(), "fault")
    while not proc.finished:
        system.sim.step()
    print(
        f"page 1 faulted in through the SMU from its new block "
        f"(LBA {fetched['lba']}); reads issued: {system.device.reads_completed}"
    )


if __name__ == "__main__":
    main()
