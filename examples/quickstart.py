#!/usr/bin/env python3
"""Quickstart: fault one page through each demand-paging implementation.

Builds three simulated machines — conventional OS demand paging (OSDP), the
paper's software-emulated SMU (SWDP), and hardware-based demand paging
(HWDP) — maps a file with the fast-mmap flag, touches the same pages on
each, and prints where the time went.

Run:  python examples/quickstart.py
"""

from repro.config import PagingMode, SystemConfig
from repro.core.system import build_system
from repro.mem.address import PAGE_SHIFT
from repro.os.vma import MmapFlags

PAGES_TO_TOUCH = 16


def run_mode(mode: PagingMode) -> dict:
    """Build a machine, mmap a file, touch pages; return what we measured."""
    system = build_system(SystemConfig(mode=mode))
    process = system.create_process("quickstart")
    thread = system.workload_thread(process, index=0)
    file = system.kernel.fs.create_file("demo.dat", num_pages=256)

    measurements = {}

    def body():
        vma = yield from system.kernel.sys_mmap(
            thread, file, file.num_pages, MmapFlags.FASTMAP
        )
        # Measure only the fault path: drop the mmap-population cost.
        thread.perf.reset()
        latencies = []
        for page in range(PAGES_TO_TOUCH):
            before = system.sim.now
            yield from thread.mem_access(vma.start + (page << PAGE_SHIFT))
            latencies.append(system.sim.now - before)
        # Touch page 0 again: now a TLB hit, effectively free.
        before = system.sim.now
        yield from thread.mem_access(vma.start)
        measurements["warm_ns"] = system.sim.now - before
        measurements["cold_ns"] = sum(latencies) / len(latencies)

    system.run([system.spawn(body(), "quickstart")])
    measurements["kernel_instr"] = thread.perf.kernel_instructions
    measurements["translations"] = dict(thread.perf.translations)
    return measurements


def main() -> None:
    print(f"Touching {PAGES_TO_TOUCH} cold pages of a fast-mmap'ed file\n")
    print(f"{'mode':6s}  {'cold miss (us)':>14s}  {'warm hit (ns)':>13s}  "
          f"{'kernel instr':>12s}  handled by")
    for mode in (PagingMode.OSDP, PagingMode.SWDP, PagingMode.HWDP):
        m = run_mode(mode)
        kinds = ", ".join(
            kind for kind in m["translations"] if kind not in ("tlb-hit", "walk")
        )
        print(
            f"{mode.value:6s}  {m['cold_ns'] / 1000.0:14.2f}  "
            f"{m['warm_ns']:13.1f}  {m['kernel_instr']:12.0f}  {kinds}"
        )
    print(
        "\nHWDP handles the miss in hardware: no exception, no kernel"
        "\ninstructions on the fault path, and latency ~= the device time."
    )


if __name__ == "__main__":
    main()
