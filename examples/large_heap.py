#!/usr/bin/env python3
"""Hardware demand paging for anonymous memory (the paper's §V extension).

An application allocates a heap larger than physical memory.  First touches
of anonymous pages carry the reserved LBA constant, so the SMU zero-fills
them without any I/O; once memory fills, evicted heap pages are swapped
out with their swap LBA recorded in the PTE — and a later touch swaps them
back in entirely in hardware.

Run:  python examples/large_heap.py
"""

from dataclasses import replace

from repro.config import MemoryConfig, PagingMode, SystemConfig
from repro.core.system import build_system
from repro.mem.address import PAGE_SHIFT
from repro.os.vma import MmapFlags

HEAP_PAGES = 1536
MEMORY_FRAMES = 1024


def run(mode: PagingMode) -> dict:
    config = SystemConfig(
        mode=mode, memory=MemoryConfig(total_frames=MEMORY_FRAMES)
    )
    config = replace(
        config,
        control_plane=replace(
            config.control_plane,
            kpted_period_ns=200_000.0,
            kpoold_period_ns=50_000.0,
        ),
    )
    system = build_system(config)
    process = system.create_process("bigheap")
    thread = system.workload_thread(process, index=0)
    stats = {}

    def body():
        heap = yield from system.kernel.sys_mmap(
            thread, None, HEAP_PAGES, MmapFlags.FASTMAP
        )
        # Phase 1: first-touch the whole heap (writes, so pages are dirty).
        start = system.sim.now
        for page in range(HEAP_PAGES):
            yield from thread.mem_access(heap.start + (page << PAGE_SHIFT), True)
        stats["first_touch_us_per_page"] = (system.sim.now - start) / HEAP_PAGES / 1000

        # Phase 2: revisit early pages — they were swapped out under pressure.
        start = system.sim.now
        for page in range(0, 256):
            yield from thread.mem_access(heap.start + (page << PAGE_SHIFT))
        stats["swapin_us_per_page"] = (system.sim.now - start) / 256 / 1000

    system.run([system.spawn(body(), "bigheap")])
    kernel = system.kernel
    stats["swapped_out"] = kernel.counters["reclaim.anon_swapped"]
    stats["zero_fills"] = (
        system.smu.anon_zero_fills
        if system.smu is not None
        else kernel.counters["fault.minor_anon"]
    )
    stats["kernel_instr"] = thread.perf.kernel_instructions
    return stats


def main() -> None:
    print(
        f"Anonymous heap of {HEAP_PAGES} pages on a {MEMORY_FRAMES}-frame "
        "machine (heap 1.5x memory)\n"
    )
    print(f"{'metric':26s}  {'OSDP':>10s}  {'HWDP':>10s}")
    rows = {mode: run(mode) for mode in (PagingMode.OSDP, PagingMode.HWDP)}
    for key, label in (
        ("first_touch_us_per_page", "first touch (us/page)"),
        ("swapin_us_per_page", "revisit/swap-in (us/page)"),
        ("zero_fills", "zero-filled pages"),
        ("swapped_out", "pages swapped out"),
        ("kernel_instr", "kernel instructions"),
    ):
        print(f"{label:26s}  {rows[PagingMode.OSDP][key]:10,.1f}  "
              f"{rows[PagingMode.HWDP][key]:10,.1f}")
    print(
        "\nWith the §V extension, first touches are hardware zero-fills"
        "\n(no exception, no I/O) and swap-ins run at device speed."
    )


if __name__ == "__main__":
    main()
