#!/usr/bin/env python3
"""When does hardware demand paging matter?  Sweep the device time.

Extends the paper's Figure 17 argument to hypothetical future devices: as
the 4 KB read time falls from HDD-era milliseconds toward memory-class
latencies, the fixed software cost of fault handling dominates, and the
hardware path's advantage explodes.

Run:  python examples/device_scaling.py
"""

from dataclasses import replace

from repro.config import PagingMode, ZSSD
from repro.experiments.runner import QUICK, build, run_driver
from repro.workloads.fio import FioRandomRead

#: 4 KB read device times to sweep (ns).
DEVICE_TIMES_NS = [100_000.0, 25_000.0, 10_900.0, 6_500.0, 2_100.0, 1_000.0, 500.0]

FAULT_KIND = {
    PagingMode.OSDP: "os-fault",
    PagingMode.SWDP: "os-fault",
    PagingMode.HWDP: "hw-miss",
}


def fault_latency(mode: PagingMode, device_ns: float) -> float:
    device = replace(ZSSD, name=f"dev-{device_ns:.0f}", read_latency_ns=device_ns,
                     write_latency_ns=device_ns * 1.2)
    system = build(mode, QUICK, device=device)
    driver = FioRandomRead(ops_per_thread=60, file_pages=QUICK.memory_frames * 4)
    run_driver(system, driver, num_threads=1)
    return driver.threads[0].perf.miss_latency[FAULT_KIND[mode]].mean


def main() -> None:
    print("Mean page-miss latency (us) vs device time — smaller is better\n")
    print(f"{'device (us)':>11s}  {'OSDP':>9s}  {'SW-only':>9s}  {'HWDP':>9s}  "
          f"{'HWDP vs OSDP':>12s}  {'HWDP vs SW':>10s}")
    for device_ns in DEVICE_TIMES_NS:
        osdp = fault_latency(PagingMode.OSDP, device_ns)
        swdp = fault_latency(PagingMode.SWDP, device_ns)
        hwdp = fault_latency(PagingMode.HWDP, device_ns)
        print(
            f"{device_ns / 1000.0:11.1f}  {osdp / 1000.0:9.2f}  "
            f"{swdp / 1000.0:9.2f}  {hwdp / 1000.0:9.2f}  "
            f"{100 * (1 - hwdp / osdp):11.1f}%  {100 * (1 - hwdp / swdp):9.1f}%"
        )
    print(
        "\nAt HDD-era latencies the OS overhead is noise; at memory-class"
        "\nlatencies even the software-only fast path wastes most of the time"
        "\n— the paper's case for hardware-based demand paging."
    )


if __name__ == "__main__":
    main()
