#!/usr/bin/env python3
"""Head-to-head comparison of all three demand-paging implementations.

Uses the ``repro.analysis`` API: run the same seeded workload on OSDP,
SWDP and HWDP machines, build structured run reports, and print the
normalized comparison — the shape of the paper's whole evaluation in one
screen.

Run:  python examples/compare_modes.py [--workload fio|dbbench|ycsb-c]
"""

import argparse

from repro.analysis import comparison_text, summarize
from repro.config import PagingMode
from repro.experiments.runner import QUICK
from repro.experiments.workload_runs import run_kv_workload


def measure(workload: str, mode: PagingMode):
    cell = run_kv_workload(workload, mode, QUICK, threads=4)
    return summarize(cell.system, cell.driver, cell.elapsed_ns)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", default="fio", choices=["fio", "dbbench", "ycsb-c", "ycsb-a"]
    )
    args = parser.parse_args()

    reports = {
        mode: measure(args.workload, mode)
        for mode in (PagingMode.OSDP, PagingMode.SWDP, PagingMode.HWDP)
    }

    print(f"workload: {args.workload}, 4 threads, dataset = 2x memory\n")
    print(reports[PagingMode.HWDP].to_text())
    print()
    print("-- HWDP vs OSDP " + "-" * 50)
    print(comparison_text(reports[PagingMode.OSDP], reports[PagingMode.HWDP]))
    print()
    print("-- HWDP vs SW-only emulation " + "-" * 37)
    print(comparison_text(reports[PagingMode.SWDP], reports[PagingMode.HWDP]))
    print(
        "\nThe software-only fast path already removes most OS overhead;"
        "\nthe hardware removes what is left (paper Figure 17)."
    )


if __name__ == "__main__":
    main()
