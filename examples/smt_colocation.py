#!/usr/bin/env python3
"""Co-locating an I/O-bound service with batch compute on one SMT core.

The paper's §VI-C "Polling vs. Context Switching" scenario: a FIO-style
I/O thread shares a physical core with a CPU-bound SPEC-like job.  Under
OSDP the fault path's kernel instructions steal issue slots and pollute the
shared caches; under HWDP the I/O thread simply stalls, so the sibling
runs at nearly full speed — and the I/O thread itself goes faster too.

Run:  python examples/smt_colocation.py [--kernel leela]
"""

import argparse

from repro.config import PagingMode
from repro.experiments.runner import QUICK, build
from repro.workloads.fio import FioRandomRead
from repro.workloads.spec import SPEC_KERNELS, SpecCompute

DURATION_NS = 1_500_000.0


def corun(mode: PagingMode, kernel: str):
    system = build(mode, QUICK)
    fio = FioRandomRead(
        ops_per_thread=10 ** 9,
        file_pages=QUICK.memory_frames * 4,
        duration_ns=DURATION_NS,
    )
    fio.prepare(system, num_threads=1)
    spec = SpecCompute(kernel, duration_ns=DURATION_NS, core_index=0, lane=1)
    spec.prepare(system, num_threads=1)
    system.run(fio.launch(system) + spec.launch(system))
    return {
        "fio_ops": fio.total_operations,
        "fio_mean_us": fio.op_latency.mean / 1000.0,
        "fio_total_instr": fio.threads[0].perf.total_instructions,
        "spec_ipc": spec.threads[0].perf.user_ipc,
        "spec_instr": spec.threads[0].perf.user_instructions,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernel", default="leela", choices=sorted(SPEC_KERNELS))
    args = parser.parse_args()

    print(f"FIO (lane 0) + SPEC {args.kernel} (lane 1) on one physical core, "
          f"{DURATION_NS / 1e6:.1f} ms\n")
    rows = {mode: corun(mode, args.kernel)
            for mode in (PagingMode.OSDP, PagingMode.HWDP)}
    osdp, hwdp = rows[PagingMode.OSDP], rows[PagingMode.HWDP]
    print(f"{'metric':28s}  {'OSDP':>12s}  {'HWDP':>12s}  {'HWDP/OSDP':>9s}")
    for key, label in (
        ("fio_ops", "FIO reads completed"),
        ("fio_mean_us", "FIO mean latency (us)"),
        ("fio_total_instr", "FIO total instructions"),
        ("spec_instr", "SPEC instructions retired"),
        ("spec_ipc", "SPEC user IPC"),
    ):
        ratio = hwdp[key] / osdp[key] if osdp[key] else float("nan")
        print(f"{label:28s}  {osdp[key]:12,.1f}  {hwdp[key]:12,.1f}  {ratio:9.2f}")
    print(
        "\nWith HWDP the stalled pipeline frees issue slots: both the I/O"
        "\nthread and its compute sibling come out ahead (paper Fig 16)."
    )


if __name__ == "__main__":
    main()
