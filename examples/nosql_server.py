#!/usr/bin/env python3
"""A NoSQL server whose working set exceeds memory — the paper's headline
application scenario (§VI-C).

Runs a YCSB-C-style read-heavy key-value service over an mmap-backed store
twice the size of physical memory, under OSDP and HWDP, and reports
throughput, tail latency, and the user-level IPC of the server threads.

Run:  python examples/nosql_server.py [--workload C] [--threads 4]
"""

import argparse

from repro.config import PagingMode
from repro.experiments.runner import QUICK
from repro.experiments.workload_runs import run_kv_workload
from repro.cpu.perf import aggregate


def serve(mode: PagingMode, workload: str, threads: int):
    cell = run_kv_workload(
        f"ycsb-{workload.lower()}", mode, QUICK, threads=threads, ratio=2.0
    )
    latency = cell.driver.op_latency
    perf = aggregate(thread.perf for thread in cell.driver.threads)
    return {
        "throughput_kops": cell.throughput / 1000.0,
        "mean_us": latency.mean / 1000.0,
        "p99_us": latency.percentile(99) / 1000.0,
        "user_ipc": perf.user_ipc,
        "kernel_instr_per_op": perf.kernel_instructions
        / max(1, cell.driver.total_operations),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="C", choices=list("ABCDEF"),
                        help="YCSB core workload (default: C)")
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args()

    print(
        f"YCSB-{args.workload} on an mmap-backed store, dataset = 2x memory, "
        f"{args.threads} server threads\n"
    )
    rows = {mode: serve(mode, args.workload, args.threads)
            for mode in (PagingMode.OSDP, PagingMode.HWDP)}
    header = f"{'metric':24s}  {'OSDP':>12s}  {'HWDP':>12s}"
    print(header)
    print("-" * len(header))
    labels = {
        "throughput_kops": "throughput (kops/s)",
        "mean_us": "mean latency (us)",
        "p99_us": "p99 latency (us)",
        "user_ipc": "user-level IPC",
        "kernel_instr_per_op": "kernel instr / op",
    }
    for key, label in labels.items():
        print(f"{label:24s}  {rows[PagingMode.OSDP][key]:12.2f}  "
              f"{rows[PagingMode.HWDP][key]:12.2f}")
    gain = (rows[PagingMode.HWDP]["throughput_kops"]
            / rows[PagingMode.OSDP]["throughput_kops"] - 1.0)
    print(f"\nHWDP serves {gain * 100:.1f}% more requests per second "
          "(paper: up to +27.3% for YCSB-C).")


if __name__ == "__main__":
    main()
