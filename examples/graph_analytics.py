#!/usr/bin/env python3
"""Semi-external graph analytics: BFS over a memory-mapped adjacency file.

The paper's introduction names graph analytics among the applications that
mmap large datasets and depend on demand-paging latency (its citations:
Pearce et al.'s semi-external traversals).  Frontier expansion touches an
unpredictable set of adjacency pages — no prefetcher helps — so every page
miss sits on the traversal's critical path.

Run:  python examples/graph_analytics.py [--vertices 6000]
"""

import argparse

from repro.analysis import summarize
from repro.config import PagingMode, SystemConfig, MemoryConfig
from repro.core.system import build_system
from repro.workloads.graph import GraphBFS


def run_bfs(mode: PagingMode, vertices: int):
    system = build_system(
        SystemConfig(mode=mode, memory=MemoryConfig(total_frames=2048))
    )
    driver = GraphBFS(num_vertices=vertices, max_vertices_visited=250)
    driver.prepare(system, num_threads=2)
    elapsed = system.run(driver.launch(system))
    return system, driver, elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=6000)
    args = parser.parse_args()

    print(f"BFS over a {args.vertices}-vertex power-law graph, 2 threads\n")
    rows = {}
    for mode in (PagingMode.OSDP, PagingMode.HWDP):
        system, driver, elapsed = run_bfs(mode, args.vertices)
        report = summarize(system, driver, elapsed)
        rows[mode] = (elapsed, report, driver)

    print(f"{'metric':30s}  {'OSDP':>12s}  {'HWDP':>12s}")
    osdp_elapsed, osdp_report, osdp_driver = rows[PagingMode.OSDP]
    hwdp_elapsed, hwdp_report, hwdp_driver = rows[PagingMode.HWDP]
    for label, osdp_value, hwdp_value in (
        ("traversal time (ms)", osdp_elapsed / 1e6, hwdp_elapsed / 1e6),
        ("vertices expanded / ms",
         osdp_report.operations / (osdp_elapsed / 1e6),
         hwdp_report.operations / (hwdp_elapsed / 1e6)),
        ("mean expansion latency (us)",
         osdp_driver.op_latency.mean / 1e3, hwdp_driver.op_latency.mean / 1e3),
        ("kernel instructions",
         osdp_report.kernel_instructions, hwdp_report.kernel_instructions),
    ):
        print(f"{label:30s}  {osdp_value:12,.2f}  {hwdp_value:12,.2f}")
    print(
        f"\nBFS finishes {osdp_elapsed / hwdp_elapsed:.2f}x faster with "
        "hardware demand paging — frontier expansion is nothing but"
        "\ndependent page misses, the pattern the paper's intro motivates."
    )


if __name__ == "__main__":
    main()
