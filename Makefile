PYTHON ?= python

.PHONY: lint baseline test tables

# Full static-analysis suite over src/, against the committed (empty)
# baseline -- the same invocation CI runs.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.check lint src/ --baseline check-baseline.json

# Re-record the baseline (only for landing a new rule ahead of its last
# fix; the committed file is expected to stay empty).
baseline:
	PYTHONPATH=src $(PYTHON) -m repro.check lint src/ --write-baseline check-baseline.json

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Re-render every recorded table and diff against the seed recordings.
tables:
	PYTHONPATH=src $(PYTHON) -m repro.experiments --jobs 2 --no-cache --out tables-out
	diff -r tables-out benchmarks/output
